"""Compiled per-link state tables and batch cost builders.

:class:`CompiledLinkArrays` mirrors a
:class:`~repro.network.database.LinkStateDatabase` into flat tables —
APLV L1 norms, Conflict-Vector bitsets, primary/backup headrooms and
the SRLG group aggregates — and builds the *entire* per-link cost
array for a search in one batch pass, replacing the object path's
per-edge closure calls.

Refresh discipline mirrors the database's exactly.  The arrays hold
their own change subscription and dirty set (never the database's —
sharing would corrupt snapshot refreshes):

* **live serving** — every cost build flushes the dirty links from
  the ledgers first, so builds read exactly what the live database
  would serve;
* **snapshot / injected staleness** — builds do *not* flush; the
  arrays stay frozen at the last :meth:`flush`, which
  :meth:`LinkStateDatabase.refresh` calls after its own rescan.

Cost encoding: each builder returns a plain list of floats, one per
link id — ``-1.0`` excludes the link (failed links, bandwidth-short
primaries), anything else is the encoded scalar
``(Q + conflict) * scale + 1.0`` consumed by
:mod:`repro.kernels.search`.  Feasibility tests replicate the object
path's float expressions verbatim (``headroom + BW_EPSILON <
bw_req``), and every arithmetic step stays on exactly-representable
integer-valued doubles, so the produced ordering is bit-identical to
the cost tuples of :mod:`repro.routing.costs`.
"""

from __future__ import annotations

from array import array
from typing import FrozenSet, List

from ..network.state import BW_EPSILON, ResourceError
from ..routing.costs import Q_PENALTY
from . import HAS_NUMPY, resolve_backend
from .bitset import mask_from_ids, packed_width

if HAS_NUMPY:  # pragma: no branch - fixed per environment
    import numpy as _np

    #: Per-byte popcount lookup table for the packed bit-matrix path
    #: (fallback when the ``bitwise_count`` ufunc is unavailable).
    _POP8 = _np.array(
        [bin(value).count("1") for value in range(256)], dtype=_np.int64
    )
    _HAS_BITWISE_COUNT = hasattr(_np, "bitwise_count")
else:  # pragma: no cover - stdlib-only environments
    _np = None
    _POP8 = None
    _HAS_BITWISE_COUNT = False


def _row_popcounts(matrix):
    """Per-row popcount of a packed bit-matrix, as int64."""
    if _HAS_BITWISE_COUNT:
        return _np.bitwise_count(matrix).sum(axis=1, dtype=_np.int64)
    if matrix.dtype != _np.uint8:  # pragma: no cover - numpy < 2.0
        matrix = matrix.view(_np.uint8).reshape(matrix.shape[0], -1)
    return _POP8[matrix].sum(axis=1)  # pragma: no cover - numpy < 2.0

#: Conflict-term flavors a compiled backup cost build understands.
CONFLICT_KINDS = ("plsr", "dlsr", "disjoint")


def _word_padded(num_bytes: int) -> int:
    """Round a packed-row byte width up to whole 64-bit words."""
    return ((num_bytes + 7) // 8) * 8


class CompiledLinkArrays:
    """Flat mirror of a link-state database plus batch cost builders.

    Create via :meth:`LinkStateDatabase.kernel_arrays` (which caches
    one instance per database) rather than directly.
    """

    def __init__(self, database, backend: str = "auto") -> None:
        self.backend = resolve_backend(backend)
        self._database = database
        self._state = database._state
        self._num_links = num_links = self._state.network.num_links
        self._cv_width = packed_width(num_links)

        if self.backend == "numpy":
            # Scalar tables live in stdlib arrays (C-speed per-element
            # writes on the flush path — numpy scalar assignment costs
            # ~10x more) with numpy views sharing the same buffer for
            # the vectorized cost builds.
            self._l1 = array("q", bytes(8 * num_links))
            self._ph = array("d", bytes(8 * num_links))
            self._bh = array("d", bytes(8 * num_links))
            self._l1_np = _np.frombuffer(self._l1, dtype=_np.int64)
            self._ph_np = _np.frombuffer(self._ph, dtype=_np.float64)
            self._bh_np = _np.frombuffer(self._bh, dtype=_np.float64)
            # The packed bit-matrices are views over plain bytearrays:
            # a row write is then one C-level slice copy of
            # ``mask.to_bytes(...)`` instead of a per-row frombuffer
            # round-trip, which dominates flush cost otherwise.  Rows
            # are padded to whole 64-bit words and *viewed* as uint64
            # so the per-search AND+popcount touches 8x fewer elements
            # than a byte-wise matrix would.
            self._cv_width = _word_padded(self._cv_width)
            self._cv_buf = bytearray(num_links * self._cv_width)
            self._cv = _np.frombuffer(
                self._cv_buf, dtype=_np.uint64
            ).reshape(num_links, self._cv_width // 8)
            self._gl1 = array("q", bytes(8 * num_links))
            self._gl1_np = _np.frombuffer(self._gl1, dtype=_np.int64)
            self._gmask_width = 8
            self._gmask_buf = bytearray(num_links * 8)
            self._gmask = _np.frombuffer(
                self._gmask_buf, dtype=_np.uint64
            ).reshape(num_links, 1)
        else:
            self._l1 = array("q", bytes(8 * num_links))
            self._ph = array("d", bytes(8 * num_links))
            self._bh = array("d", bytes(8 * num_links))
            self._cv: List[int] = [0] * num_links
            self._gl1 = array("q", bytes(8 * num_links))
            self._gmask: List[int] = [0] * num_links

        #: Group tables are valid only after a sync performed while an
        #: SRLG assignment was visible (mirrors the database's
        #: snapshot-group-table corner).
        self._have_group_tables = False
        self._group_table_token = None
        #: Identity key for the cached group-of mapping (always live,
        #: like ``database.risk_groups`` reads).
        self._groups_token = None
        self._group_of = None

        self._dirty: set = set()
        self.flushes = 0
        self.links_rescanned = 0
        self.builds = 0
        self._state.subscribe(self._mark_dirty)

        if database._serving_live():
            self._rebuild_from_ledgers()
        else:
            self._load_snapshot()
            # Mutations between the database's last refresh and this
            # lazy creation predate our subscription; adopt them so the
            # next refresh-flush rescans those links too.
            self._dirty.update(database._dirty_links)

    def _mark_dirty(self, link_id: int) -> None:
        self._dirty.add(link_id)

    def dirty_links(self) -> frozenset:
        """Links awaiting rescan at the next flush (introspection)."""
        return frozenset(self._dirty)

    @property
    def have_group_tables(self) -> bool:
        return self._have_group_tables

    # ------------------------------------------------------------------
    # Table maintenance
    # ------------------------------------------------------------------
    def _write_link(self, link_id: int, ledger) -> None:
        self._l1[link_id] = ledger.aplv.l1_norm
        self._ph[link_id] = ledger.primary_headroom()
        self._bh[link_id] = ledger.backup_headroom()
        self._set_cv(link_id, ledger.support_mask())

    def _set_cv(self, link_id: int, mask: int) -> None:
        if self.backend == "numpy":
            width = self._cv_width
            offset = link_id * width
            self._cv_buf[offset:offset + width] = mask.to_bytes(
                width, "little"
            )
        else:
            self._cv[link_id] = mask

    def _set_group(self, link_id: int, gl1: int, gmask: int) -> None:
        self._gl1[link_id] = gl1
        if self.backend == "numpy":
            width = self._gmask_width
            need = _word_padded(max(1, packed_width(gmask.bit_length())))
            if need > width:
                wider = bytearray(self._num_links * need)
                for row in range(self._num_links):
                    wider[row * need:row * need + width] = (
                        self._gmask_buf[row * width:(row + 1) * width]
                    )
                self._gmask_buf = wider
                self._gmask = _np.frombuffer(
                    wider, dtype=_np.uint64
                ).reshape(self._num_links, need // 8)
                self._gmask_width = width = need
            offset = link_id * width
            self._gmask_buf[offset:offset + width] = gmask.to_bytes(
                width, "little"
            )
        else:
            self._gmask[link_id] = gmask

    def _rebuild_from_ledgers(self) -> None:
        track_groups = self._database.has_risk_groups
        for ledger in self._state.ledgers():
            self._write_link(ledger.link_id, ledger)
            if track_groups:
                self._set_group(
                    ledger.link_id,
                    ledger.group_aplv_l1(),
                    ledger.group_support_mask(),
                )
        if track_groups:
            self._have_group_tables = True
            self._group_table_token = self._state.risk_groups
        self._dirty.clear()
        self.links_rescanned += self._num_links

    def _load_snapshot(self) -> None:
        database = self._database
        if not database._snapshot_l1:
            raise ResourceError("snapshot database never refreshed")
        for link_id in range(self._num_links):
            self._l1[link_id] = database._snapshot_l1[link_id]
            self._ph[link_id] = database._snapshot_primary_headroom[link_id]
            self._bh[link_id] = database._snapshot_backup_headroom[link_id]
            self._set_cv(
                link_id,
                mask_from_ids(database._snapshot_cv[link_id].bits),
            )
        if database._snapshot_group_l1:
            for link_id in range(self._num_links):
                self._set_group(
                    link_id,
                    database._snapshot_group_l1[link_id],
                    mask_from_ids(
                        database._snapshot_group_support[link_id]
                    ),
                )
            self._have_group_tables = True
            self._group_table_token = database.risk_groups
        self.links_rescanned += self._num_links

    def flush(self) -> int:
        """Rescan every dirty link from its ledger; returns the number
        of links rescanned.  Called before each cost build while the
        database serves live, and by :meth:`LinkStateDatabase.refresh`
        after its own snapshot rescan — never during a snapshot or
        staleness window, which must keep serving frozen tables."""
        self.flushes += 1
        rescanned = 0
        state = self._state
        groups = state.risk_groups
        if groups is not None and (
            not self._have_group_tables
            or groups is not self._group_table_token
        ):
            # First sight of an assignment (or a reinstalled one whose
            # group ids mean something new): build the group tables in
            # one full pass, like the database's late-group refresh.
            for ledger in state.ledgers():
                self._set_group(
                    ledger.link_id,
                    ledger.group_aplv_l1(),
                    ledger.group_support_mask(),
                )
            self._have_group_tables = True
            self._group_table_token = groups
            rescanned += self._num_links
        elif groups is None:
            self._have_group_tables = False
            self._group_table_token = None
        if self._dirty:
            track_groups = self._have_group_tables
            ledger_of = state.ledger
            if not track_groups:
                # Hot path: every admission dirties ~|route| links, so
                # the rescan loop runs inlined against the ledgers'
                # underlying fields (their exact float expressions:
                # ``free = capacity - prime - spare`` and headrooms
                # ``free`` / ``free + spare``) instead of paying four
                # method/property calls per link via _write_link.
                l1 = self._l1
                ph = self._ph
                bh = self._bh
                if self.backend == "numpy":
                    buf = self._cv_buf
                    width = self._cv_width
                    for link_id in self._dirty:
                        ledger = ledger_of(link_id)
                        aplv = ledger._aplv
                        l1[link_id] = aplv._l1
                        spare = ledger._spare_bw
                        free = ledger.capacity - ledger._prime_bw - spare
                        ph[link_id] = free
                        bh[link_id] = free + spare
                        offset = link_id * width
                        buf[offset:offset + width] = (
                            aplv._support_mask.to_bytes(width, "little")
                        )
                else:
                    cv = self._cv
                    for link_id in self._dirty:
                        ledger = ledger_of(link_id)
                        aplv = ledger._aplv
                        l1[link_id] = aplv._l1
                        spare = ledger._spare_bw
                        free = ledger.capacity - ledger._prime_bw - spare
                        ph[link_id] = free
                        bh[link_id] = free + spare
                        cv[link_id] = aplv._support_mask
            else:
                for link_id in self._dirty:
                    ledger = ledger_of(link_id)
                    self._write_link(link_id, ledger)
                    self._set_group(
                        link_id,
                        ledger.group_aplv_l1(),
                        ledger.group_support_mask(),
                    )
            rescanned += len(self._dirty)
            self._dirty.clear()
        self.links_rescanned += rescanned
        return rescanned

    def _sync_for_build(self) -> None:
        self.builds += 1
        if self._database._serving_live():
            self.flush()

    def _live_group_of(self):
        """The current (always-live) link→group mapping, cached per
        :class:`~repro.topology.srlg.RiskGroupSet` identity."""
        groups = self._state.risk_groups
        if groups is not self._groups_token:
            self._groups_token = groups
            if groups is None:
                self._group_of = None
            elif self.backend == "numpy":
                self._group_of = _np.array(
                    groups._group_of, dtype=_np.int64
                )
            else:
                self._group_of = groups._group_of
        return groups

    # ------------------------------------------------------------------
    # Batch cost builders
    # ------------------------------------------------------------------
    def primary_costs(self, bw_req: float) -> List[float]:
        """Per-link primary costs: ``1.0`` per feasible link, ``-1.0``
        for failed or bandwidth-short links — the array form of
        :func:`repro.routing.costs.primary_link_cost`."""
        self._sync_for_build()
        if self.backend == "numpy":
            costs = _np.where(
                self._ph_np + BW_EPSILON < bw_req, -1.0, 1.0
            )
            failed = self._state.failed_links()
            if failed:
                costs[list(failed)] = -1.0
            return costs.tolist()
        ph = self._ph
        costs = [1.0] * self._num_links
        for link_id in range(self._num_links):
            if ph[link_id] + BW_EPSILON < bw_req:
                costs[link_id] = -1.0
        for link_id in self._state.failed_links():
            costs[link_id] = -1.0
        return costs

    def backup_costs(
        self,
        kind: str,
        bw_req: float,
        primary_lset,
        avoid_lset,
        scale: float,
    ) -> List[float]:
        """Per-link encoded backup costs
        ``(Q + conflict) * scale + 1.0`` (``-1.0`` for failed links).

        ``kind`` picks the conflict term: ``"plsr"`` (APLV L1),
        ``"dlsr"`` (CV ∩ LSET popcount) or ``"disjoint"`` (0).  With an
        SRLG assignment visible on the database all terms switch to
        their group aggregates, exactly like the closures in
        :mod:`repro.routing.costs`.
        """
        if kind not in CONFLICT_KINDS:
            raise ValueError(
                "unknown conflict kind {!r} (want one of {})".format(
                    kind, CONFLICT_KINDS
                )
            )
        self._sync_for_build()
        lset = frozenset(primary_lset)
        avoid = frozenset(avoid_lset) if avoid_lset is not None else lset
        if self._database.has_risk_groups:
            costs = self._group_backup_costs(
                kind, bw_req, lset, avoid, scale
            )
        elif self.backend == "numpy":
            costs = self._np_backup_costs(kind, bw_req, lset, avoid, scale)
        else:
            costs = self._py_backup_costs(kind, bw_req, lset, avoid, scale)
        failed = self._state.failed_links()
        if failed:
            for link_id in failed:
                costs[link_id] = -1.0
        return costs

    def _py_backup_costs(
        self,
        kind: str,
        bw_req: float,
        lset: FrozenSet[int],
        avoid: FrozenSet[int],
        scale: float,
    ) -> List[float]:
        num_links = self._num_links
        bh = self._bh
        avoid_mask = mask_from_ids(avoid)
        costs = [0.0] * num_links
        if kind == "plsr":
            l1 = self._l1
            for link_id in range(num_links):
                if (avoid_mask >> link_id) & 1 or (
                    bh[link_id] + BW_EPSILON < bw_req
                ):
                    q = Q_PENALTY
                else:
                    q = 0.0
                costs[link_id] = (q + l1[link_id]) * scale + 1.0
        elif kind == "dlsr":
            cv = self._cv
            lmask = mask_from_ids(lset)
            for link_id in range(num_links):
                if (avoid_mask >> link_id) & 1 or (
                    bh[link_id] + BW_EPSILON < bw_req
                ):
                    q = Q_PENALTY
                else:
                    q = 0.0
                conflict = (cv[link_id] & lmask).bit_count()
                costs[link_id] = (q + conflict) * scale + 1.0
        else:
            base = 0.0 * scale + 1.0
            penalized = Q_PENALTY * scale + 1.0
            for link_id in range(num_links):
                if (avoid_mask >> link_id) & 1 or (
                    bh[link_id] + BW_EPSILON < bw_req
                ):
                    costs[link_id] = penalized
                else:
                    costs[link_id] = base
        return costs

    def _np_backup_costs(
        self,
        kind: str,
        bw_req: float,
        lset: FrozenSet[int],
        avoid: FrozenSet[int],
        scale: float,
    ) -> List[float]:
        q = _np.where(self._bh_np + BW_EPSILON < bw_req, Q_PENALTY, 0.0)
        if avoid:
            # Avoided links get Q regardless of bandwidth — same single
            # charge as the object path's if/elif (never 2Q).
            q[list(avoid)] = Q_PENALTY
        if kind == "plsr":
            conflict = self._l1_np
        elif kind == "dlsr":
            lrow = _np.frombuffer(
                mask_from_ids(lset).to_bytes(self._cv_width, "little"),
                dtype=_np.uint64,
            )
            # An LSET occupies only a few of the row's words — AND and
            # popcount just those columns (popcount of the rest is 0).
            cols = _np.flatnonzero(lrow)
            conflict = _row_popcounts(self._cv[:, cols] & lrow[cols])
        else:
            conflict = 0
        # In-place combine: q is a fresh temporary, so fold the
        # conflict term and the (scale, +hop) encoding into it rather
        # than allocating three more 1-per-link temporaries.
        _np.add(q, conflict, out=q)
        _np.multiply(q, scale, out=q)
        _np.add(q, 1.0, out=q)
        return q.tolist()

    def _group_backup_costs(
        self,
        kind: str,
        bw_req: float,
        lset: FrozenSet[int],
        avoid: FrozenSet[int],
        scale: float,
    ) -> List[float]:
        groups = self._live_group_of()
        if kind != "disjoint" and not self._have_group_tables:
            # The conflict aggregates would come from group tables the
            # database has never snapshotted (groups installed after
            # the last refresh) — the object path's read raises this
            # same error.
            raise ResourceError("snapshot database never refreshed")
        avoid_groups = groups.groups_of(avoid)
        num_links = self._num_links
        group_of = self._group_of
        if self.backend == "numpy":
            avoided_group = _np.zeros(groups.num_groups, dtype=bool)
            if avoid_groups:
                avoided_group[list(avoid_groups)] = True
            q = _np.where(
                avoided_group[group_of]
                | (self._bh_np + BW_EPSILON < bw_req),
                Q_PENALTY,
                0.0,
            )
            if kind == "plsr":
                conflict = self._gl1_np
            elif kind == "dlsr":
                width = self._gmask_width
                # Group ids beyond the table width (a wider reinstalled
                # assignment not yet resynced) cannot intersect stored
                # rows — mask them off instead of overflowing to_bytes.
                lset_gmask = mask_from_ids(groups.groups_of(lset))
                lset_gmask &= (1 << (8 * width)) - 1
                grow = _np.frombuffer(
                    lset_gmask.to_bytes(width, "little"),
                    dtype=_np.uint64,
                )
                conflict = _row_popcounts(self._gmask & grow)
            else:
                conflict = 0
            return ((q + conflict) * scale + 1.0).tolist()
        bh = self._bh
        avoid_gmask = mask_from_ids(avoid_groups)
        costs = [0.0] * num_links
        if kind == "plsr":
            gl1 = self._gl1
            for link_id in range(num_links):
                if (avoid_gmask >> group_of[link_id]) & 1 or (
                    bh[link_id] + BW_EPSILON < bw_req
                ):
                    q = Q_PENALTY
                else:
                    q = 0.0
                costs[link_id] = (q + gl1[link_id]) * scale + 1.0
        elif kind == "dlsr":
            gmask = self._gmask
            lset_gmask = mask_from_ids(groups.groups_of(lset))
            for link_id in range(num_links):
                if (avoid_gmask >> group_of[link_id]) & 1 or (
                    bh[link_id] + BW_EPSILON < bw_req
                ):
                    q = Q_PENALTY
                else:
                    q = 0.0
                conflict = (gmask[link_id] & lset_gmask).bit_count()
                costs[link_id] = (q + conflict) * scale + 1.0
        else:
            base = 0.0 * scale + 1.0
            penalized = Q_PENALTY * scale + 1.0
            for link_id in range(num_links):
                if (avoid_gmask >> group_of[link_id]) & 1 or (
                    bh[link_id] + BW_EPSILON < bw_req
                ):
                    costs[link_id] = penalized
                else:
                    costs[link_id] = base
        return costs
