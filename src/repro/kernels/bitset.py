"""Bitset primitives shared by the compiled kernel backends.

A link's Conflict Vector — the support of its APLV — is held as one
arbitrary-precision Python int: bit ``j`` set means ``a_{i,j} > 0``.
D-LSR's cost term ``Σ_{L_j ∈ LSET_P} c_{i,j}`` then collapses to
``popcount(cv_i & lset_mask)``, one C-level AND and bit-count instead
of ``|LSET_P|`` dict probes.  The same layout, serialized little-endian
(bit ``j`` lives in byte ``j // 8`` at weight ``1 << (j % 8)``), backs
the numpy packed bit-matrix, so both backends agree byte for byte —
the property suite (``tests/test_property_kernels.py``) checks these
primitives against the deliberately-naive ``*_naive`` oracles kept
alongside them.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable


def mask_from_ids(ids: Iterable[int]) -> int:
    """Fold a set of bit positions into one int bitset."""
    mask = 0
    for position in ids:
        mask |= 1 << position
    return mask


def popcount(mask: int) -> int:
    """Number of set bits (C fast path: ``int.bit_count``)."""
    return mask.bit_count()


def popcount_naive(mask: int) -> int:
    """Oracle popcount: count the 1 digits of the binary expansion."""
    if mask < 0:
        raise ValueError("bitsets are non-negative")
    return bin(mask).count("1")


def and_popcount(a: int, b: int) -> int:
    """``popcount(a & b)`` — the D-LSR conflict count over bitsets."""
    return (a & b).bit_count()


def and_popcount_naive(a: int, b: int) -> int:
    """Oracle: intersect the explicit position sets and count."""
    return len(bits_of(a) & bits_of(b))


def or_fold(masks: Iterable[int]) -> int:
    """Union of bitsets — e.g. the risk groups touched by an LSET."""
    mask = 0
    for value in masks:
        mask |= value
    return mask


def or_fold_naive(masks: Iterable[int]) -> int:
    """Oracle union via explicit position sets."""
    positions: set = set()
    for value in masks:
        positions |= bits_of(value)
    return mask_from_ids(positions)


def bits_of(mask: int) -> FrozenSet[int]:
    """The explicit set of positions a bitset encodes (test helper and
    oracle inverse of :func:`mask_from_ids`)."""
    if mask < 0:
        raise ValueError("bitsets are non-negative")
    positions = []
    position = 0
    while mask:
        if mask & 1:
            positions.append(position)
        mask >>= 1
        position += 1
    return frozenset(positions)


def packed_width(num_bits: int) -> int:
    """Bytes needed for ``num_bits`` in the packed layout."""
    return (num_bits + 7) // 8


def to_packed_bytes(mask: int, num_bits: int) -> bytes:
    """Serialize a bitset to the shared little-endian packed layout
    (bit ``j`` → byte ``j // 8``, weight ``1 << (j % 8)``) — the row
    format of the numpy bit-matrix backend."""
    if mask < 0:
        raise ValueError("bitsets are non-negative")
    if mask.bit_length() > num_bits:
        raise ValueError(
            "bitset uses {} bits but the row holds {}".format(
                mask.bit_length(), num_bits
            )
        )
    return mask.to_bytes(packed_width(num_bits), "little")


def from_packed_bytes(row: bytes) -> int:
    """Inverse of :func:`to_packed_bytes` (test helper)."""
    return int.from_bytes(bytes(row), "little")
