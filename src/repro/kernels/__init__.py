"""Array-compiled routing kernels.

The object-based routing engine (PR 2) evaluates APLV/CV conflict
costs through per-edge closures: every edge Dijkstra expands calls
back into the link-state database, which walks a sparse dict per
``LSET_P`` position.  This package *compiles* that hot path into
contiguous integer arrays:

* per-link APLV L1 norms, Conflict-Vector bitsets, headrooms and the
  SRLG group tables live in flat arrays
  (:class:`~repro.kernels.arrays.CompiledLinkArrays`), refreshed in
  batch from the ledgers' dirty set instead of being re-read per edge;
* the backup cost of *every* link is computed in one vectorized pass
  per search (bit-AND + popcount against the primary's ``LSET`` mask),
  producing a scalar cost array;
* Dijkstra runs over that array with flat ``(dst, link_id)`` pair
  adjacency (:mod:`repro.kernels.search`), no cost closures and no
  tuple arithmetic — and the unbounded unit-cost primary search
  degenerates (provably bit-identically) to a deque BFS.

Lexicographic ``(conflict_cost, hops)`` tuples are encoded as the
single float ``conflict_cost * scale + hops`` with ``scale`` larger
than any reachable hop count.  Both components are integer-valued and
every encoded sum stays far below 2**53, so the encoding is **exact**
in IEEE doubles and the compiled search reproduces the object path's
routes — including every tie-break — bit for bit.  The conformance
suite (``tests/test_kernel_equivalence.py``) holds the compiled
kernel to that bar against both the naive reference and the object
fast path.

Backends: the stdlib backend keeps Conflict Vectors as Python int
bitsets (``&`` + ``int.bit_count``); when numpy is importable an
optional backend stores them as a packed ``uint8`` bit-matrix and
evaluates whole cost arrays with vectorized popcounts.  Selection is
automatic at import, overridable per process with the
``REPRO_KERNELS_BACKEND`` environment variable (``auto`` | ``numpy``
| ``stdlib``) — the CI matrix uses it to exercise both legs.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _numpy  # noqa: F401

    HAS_NUMPY = True
except Exception:  # pragma: no cover - stdlib-only environments
    HAS_NUMPY = False

#: Environment variable overriding backend auto-detection.
BACKEND_ENV = "REPRO_KERNELS_BACKEND"

#: Valid kernel selector values on a routing scheme.
KERNEL_MODES = ("auto", "compiled", "object")


def numpy_available() -> bool:
    """True when the numpy backend can be used in this process."""
    return HAS_NUMPY


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a backend request to ``"numpy"`` or ``"stdlib"``.

    ``"auto"`` consults the :data:`BACKEND_ENV` environment variable
    first (so a test matrix can force the stdlib leg with numpy still
    installed), then picks numpy when importable.  Requesting
    ``"numpy"`` without numpy installed raises ``RuntimeError``.
    """
    if backend == "auto":
        backend = os.environ.get(BACKEND_ENV, "auto") or "auto"
    if backend == "auto":
        return "numpy" if HAS_NUMPY else "stdlib"
    if backend == "numpy":
        if not HAS_NUMPY:
            raise RuntimeError("numpy backend requested but numpy is missing")
        return "numpy"
    if backend == "stdlib":
        return "stdlib"
    raise ValueError(
        "unknown kernels backend {!r} (want auto, numpy or stdlib)".format(
            backend
        )
    )


from .arrays import CompiledLinkArrays  # noqa: E402
from .bitset import (  # noqa: E402
    and_popcount,
    bits_of,
    mask_from_ids,
    or_fold,
    popcount,
    to_packed_bytes,
)
from .search import (  # noqa: E402
    encode_scale,
    flat_bounded_shortest_path,
    flat_min_hop_path,
    flat_shortest_path,
)

__all__ = [
    "BACKEND_ENV",
    "CompiledLinkArrays",
    "HAS_NUMPY",
    "KERNEL_MODES",
    "and_popcount",
    "bits_of",
    "encode_scale",
    "flat_bounded_shortest_path",
    "flat_min_hop_path",
    "flat_shortest_path",
    "mask_from_ids",
    "numpy_available",
    "or_fold",
    "popcount",
    "resolve_backend",
    "to_packed_bytes",
]
