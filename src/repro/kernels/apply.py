"""Batched admission apply — the signaling commit path as one
dirty-set transaction per walk.

The per-hop register walk (:mod:`repro.core.signaling`) and primary
reservation loop (:mod:`repro.core.admission`) mutate one ledger at a
time, paying a ``_touch`` notification, a spare resize and several
attribute lookups per hop.  Profiles after the PR 7 kernels show both
benchmark arms bottlenecked on exactly this shared bookkeeping.  The
entry points here rebuild each walk as *validate-then-apply*:

1. a read-only validation pass over the whole route decides the
   outcome (including which hop rejects) without mutating anything;
2. an apply pass fuses the APLV/CV/demand updates, backup-registry
   writes and spare-pool resizes into one tight loop over the route;
3. all change notifications are deferred to a single
   :meth:`~repro.network.state.NetworkState.publish_changes` call —
   one dirty-set transaction per admission, mirroring the kernels'
   batch-refresh discipline.

Bit-exactness contract (the same discipline as
:mod:`repro.routing.costs`): every float comparison and update copies
the ledger expressions *verbatim* — ``backup_headroom`` is
``(capacity − prime − spare) + spare``, never the algebraically equal
``capacity − prime`` — and every mutation replicates the exact
per-hop sequence of ``version`` bumps, running-maximum updates and
staleness resolutions.  Equivalence rests on per-link independence:
routes are simple paths, and each hop's headroom check and resize
read only that hop's own ledger, so no earlier hop's mutation can
change a later hop's decision.  Whenever a precondition for that
argument fails (duplicate link ids in a route, an already-registered
key, an out-of-range LSET position, a mismatched per-ledger SRLG
view), the entry point returns ``None`` and the caller falls back to
the per-hop walk, which reproduces the legacy behavior — including
its exception semantics — exactly.  ``REPRO_BATCH_APPLY=0`` disables
the batched path entirely for A/B comparison.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from ..network.state import BW_EPSILON, NetworkState

#: Environment variable gating the batched apply path ("0"/"off"
#: disables it and every walk takes the legacy per-hop loop).
BATCH_APPLY_ENV = "REPRO_BATCH_APPLY"

_DISABLED = {"0", "false", "off", "no"}

_enabled = os.environ.get(BATCH_APPLY_ENV, "1").strip().lower() not in _DISABLED

#: Lazily resolved ``(ResizeOutcome, SharedSparePolicy)`` — imported at
#: first use so ``repro.kernels.apply`` can be imported before
#: ``repro.core`` finishes initializing (core.signaling imports this
#: module at its own import time).
_CORE_TYPES = None


def batch_apply_enabled() -> bool:
    """Whether the batched commit path is active (see
    :data:`BATCH_APPLY_ENV`)."""
    return _enabled


def set_batch_apply(flag: bool) -> bool:
    """Toggle the batched commit path at runtime (tests and paired
    benchmarks); returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def _core_types():
    global _CORE_TYPES
    if _CORE_TYPES is None:
        from ..core.multiplexing import ResizeOutcome, SharedSparePolicy

        _CORE_TYPES = (ResizeOutcome, SharedSparePolicy)
    return _CORE_TYPES


def _batchable_route(link_ids: Sequence[int]) -> bool:
    """Routes with repeated link ids void the per-link independence
    argument; hand them back to the per-hop walk."""
    return len(set(link_ids)) == len(link_ids)


def _uniform_groups(state: NetworkState, ledgers, link_ids) -> bool:
    """Every touched ledger must share the network-wide SRLG view for
    the fused group accounting to be exact."""
    groups = state._risk_groups
    for link_id in link_ids:
        if ledgers[link_id]._risk_groups is not groups:
            return False
    return True


# ----------------------------------------------------------------------
# Backup registration (the signaling register walk)
# ----------------------------------------------------------------------
def batch_register_walk(
    state: NetworkState,
    policy,
    key,
    link_ids: Sequence[int],
    primary_lset,
    bw: float,
) -> Optional[Tuple[Optional[int], int, list]]:
    """Fault-free register walk, batched.

    Returns ``None`` when the batched path cannot guarantee exact
    equivalence (caller falls back to the per-hop walk), else
    ``(rejected_link, hops_signaled, resizes)`` with
    ``rejected_link is None`` on success.  A rejection mutates
    nothing — observably identical to the per-hop register/unwind
    cycle, whose fingerprint is unchanged by construction.
    """
    if not _enabled or bw <= 0:
        return None
    n = len(link_ids)
    if n == 0:
        return (None, 0, [])
    if not _batchable_route(link_ids):
        return None
    ledgers = state._ledgers
    num_links = state.network.num_links
    lset = frozenset(primary_lset)
    if lset and (min(lset) < 0 or max(lset) >= num_links):
        return None

    # Validation pass: pure reads.  Per-link independence means each
    # hop's headroom here equals what the per-hop walk would see at
    # that hop, so the first failing hop — and therefore
    # ``hops_signaled`` — matches exactly.
    hops = 0
    try:
        for link_id in link_ids:
            ledger = ledgers[link_id]
            hops += 1
            # backup_headroom() verbatim: free_bw + spare, with
            # free_bw = capacity - prime - spare.  NOT capacity - prime.
            headroom = (
                ledger.capacity - ledger._prime_bw - ledger._spare_bw
            ) + ledger._spare_bw
            if headroom + BW_EPSILON < bw:
                return (link_id, hops, [])
            if key in ledger._backups:
                # Duplicate registration raises in the per-hop walk;
                # let it reproduce the exact error.
                return None
    except IndexError:
        return None
    if not _uniform_groups(state, ledgers, link_ids):
        return None

    ResizeOutcome, SharedSparePolicy = _core_types()
    shared = type(policy) is SharedSparePolicy
    groups = state._risk_groups
    glist = tuple(groups.groups_of(lset)) if groups is not None else ()
    llen = len(lset)
    # OR of the LSET's bits, computed once per walk: a hop's support
    # mask after registration is exactly ``mask | lset_mask`` (already
    # present positions keep their bits, fresh ones gain them).
    lset_mask = 0
    for pos in lset:
        lset_mask |= 1 << pos

    # Apply pass: fused registration + resize per hop, change
    # notifications deferred to one publish below.
    resizes: List = []
    append_resize = resizes.append
    for link_id in link_ids:
        ledger = ledgers[link_id]
        aplv = ledger._aplv
        counts = aplv._counts
        demand = ledger._demand
        demand_get = demand.get
        dmax = ledger._demand_max
        # Counter.update runs the increment loop in C; fresh positions
        # (0 -> 1 crossings) are exactly the length growth.
        before = len(counts)
        counts.update(lset)
        fresh = len(counts) - before
        if fresh:
            aplv._support_mask |= lset_mask
            aplv._support_version += fresh
        for pos in lset:
            total = demand_get(pos, 0.0) + bw
            demand[pos] = total
            if total > dmax:
                dmax = total
        aplv._l1 += llen
        ledger._demand_max = dmax
        if groups is not None:
            gaplv = ledger._group_aplv
            gdemand = ledger._group_demand
            gdmax = ledger._group_demand_max
            for group in glist:
                gaplv[group] = gaplv.get(group, 0) + 1
                gtotal = gdemand.get(group, 0.0) + bw
                gdemand[group] = gtotal
                if gtotal > gdmax:
                    gdmax = gtotal
            ledger._group_demand_max = gdmax
        ledger._backups[key] = (lset, bw)
        ledger.version += 1
        if shared:
            # SharedSparePolicy.resize inlined: target is max_demand
            # (staleness resolved exactly as the property does), the
            # clamp and the no-op-skip copy set_spare verbatim.  The
            # growth guard is provably dead here: achieved ≤ ceiling
            # means growth ≤ free_bw.
            if ledger._demand_max_stale:
                ledger._demand_max = (
                    max(demand.values()) if demand else 0.0
                )
                ledger._demand_max_stale = False
            target = ledger._demand_max
            ceiling = ledger.capacity - ledger._prime_bw
            achieved = min(target, max(0.0, ceiling))
            if achieved != ledger._spare_bw:
                ledger._spare_bw = achieved
                ledger.version += 1
            append_resize(
                ResizeOutcome(
                    link_id=link_id, target=target, achieved=achieved
                )
            )
        else:
            append_resize(policy.resize(ledger))
    state.publish_changes(link_ids)
    return (None, hops, resizes)


# ----------------------------------------------------------------------
# Backup release (teardown walk)
# ----------------------------------------------------------------------
def batch_release_walk(
    state: NetworkState,
    policy,
    key,
    link_ids: Sequence[int],
) -> Optional[list]:
    """Fused backup-release walk; ``None`` falls back to per-hop.

    Validation requires every hop to hold the registration with
    positive APLV counts on every stored LSET position, so the fused
    decrement can never underflow where the per-hop walk would have
    raised instead.
    """
    if not _enabled:
        return None
    if not link_ids:
        return []
    if not _batchable_route(link_ids):
        return None
    ledgers = state._ledgers
    try:
        for link_id in link_ids:
            ledger = ledgers[link_id]
            stored = ledger._backups.get(key)
            if stored is None:
                return None
            counts = ledger._aplv._counts
            for pos in stored[0]:
                if counts.get(pos, 0) <= 0:
                    return None
    except IndexError:
        return None
    if not _uniform_groups(state, ledgers, link_ids):
        return None

    ResizeOutcome, SharedSparePolicy = _core_types()
    shared = type(policy) is SharedSparePolicy
    groups = state._risk_groups

    outcomes: List = []
    append_outcome = outcomes.append
    for link_id in link_ids:
        ledger = ledgers[link_id]
        lset, bw = ledger._backups.pop(key)
        aplv = ledger._aplv
        counts = aplv._counts
        mask = aplv._support_mask
        zeroed = 0
        for pos in lset:
            remaining = counts[pos] - 1
            if remaining:
                counts[pos] = remaining
            else:
                del counts[pos]
                mask &= ~(1 << pos)
                zeroed += 1
        if zeroed:
            aplv._support_mask = mask
            aplv._support_version += zeroed
        aplv._l1 -= len(lset)
        ledger._demand_max_stale = True
        ledger._group_demand_max_stale = True
        demand = ledger._demand
        for pos in lset:
            remaining = demand[pos] - bw
            if remaining <= BW_EPSILON:
                del demand[pos]
            else:
                demand[pos] = remaining
        if groups is not None:
            gaplv = ledger._group_aplv
            gdemand = ledger._group_demand
            for group in groups.groups_of(lset):
                count = gaplv[group] - 1
                if count <= 0:
                    del gaplv[group]
                else:
                    gaplv[group] = count
                remaining = gdemand[group] - bw
                if remaining <= BW_EPSILON:
                    del gdemand[group]
                else:
                    gdemand[group] = remaining
        ledger.version += 1
        if shared:
            if ledger._demand_max_stale:
                ledger._demand_max = (
                    max(demand.values()) if demand else 0.0
                )
                ledger._demand_max_stale = False
            target = ledger._demand_max
            ceiling = ledger.capacity - ledger._prime_bw
            achieved = min(target, max(0.0, ceiling))
            if achieved != ledger._spare_bw:
                ledger._spare_bw = achieved
                ledger.version += 1
            append_outcome(
                ResizeOutcome(
                    link_id=link_id, target=target, achieved=achieved
                )
            )
        else:
            append_outcome(policy.resize(ledger))
    state.publish_changes(link_ids)
    return outcomes


# ----------------------------------------------------------------------
# Primary reservation / release
# ----------------------------------------------------------------------
def batch_reserve_primary(
    state: NetworkState,
    link_ids: Sequence[int],
    bw: float,
) -> Optional[bool]:
    """Batched primary reservation: validate every hop's headroom,
    then apply in one fused loop.  Returns ``None`` to fall back,
    ``False`` for an infeasible route (nothing mutated — identical to
    the per-hop reserve/undo cycle), ``True`` once reserved."""
    if not _enabled or bw <= 0:
        return None
    if not _batchable_route(link_ids):
        return None
    ledgers = state._ledgers
    try:
        for link_id in link_ids:
            ledger = ledgers[link_id]
            # primary_headroom() verbatim: free_bw.
            headroom = (
                ledger.capacity - ledger._prime_bw - ledger._spare_bw
            )
            if headroom + BW_EPSILON < bw:
                return False
    except IndexError:
        return None
    for link_id in link_ids:
        ledger = ledgers[link_id]
        ledger._prime_bw += bw
        ledger.version += 1
    state.publish_changes(link_ids)
    return True


def batch_release_primary(
    state: NetworkState,
    policy,
    link_ids: Sequence[int],
    bw: float,
) -> bool:
    """Batched primary release with per-hop spare replenishment.
    Returns ``False`` to fall back to the per-hop loop (which
    reproduces the exact :class:`~repro.network.state.ResourceError`
    on over-release)."""
    if not _enabled or bw <= 0:
        return False
    if not _batchable_route(link_ids):
        return False
    ledgers = state._ledgers
    try:
        for link_id in link_ids:
            if bw > ledgers[link_id]._prime_bw + BW_EPSILON:
                return False
    except IndexError:
        return False

    ResizeOutcome, SharedSparePolicy = _core_types()
    shared = type(policy) is SharedSparePolicy
    for link_id in link_ids:
        ledger = ledgers[link_id]
        ledger._prime_bw = max(0.0, ledger._prime_bw - bw)
        ledger.version += 1
        if shared:
            if ledger._demand_max_stale:
                demand = ledger._demand
                ledger._demand_max = (
                    max(demand.values()) if demand else 0.0
                )
                ledger._demand_max_stale = False
            target = ledger._demand_max
            ceiling = ledger.capacity - ledger._prime_bw
            achieved = min(target, max(0.0, ceiling))
            if achieved != ledger._spare_bw:
                ledger._spare_bw = achieved
                ledger.version += 1
        else:
            policy.resize(ledger)
    state.publish_changes(link_ids)
    return True
