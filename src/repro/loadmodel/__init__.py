"""Production-trace workload engine (MMPP x diurnal hot-spot drift).

The paper evaluates Poisson arrivals with fixed UT/NT endpoint
patterns over ~hour horizons.  Production traffic is burstier (rates
flip between calm and busy regimes) and its hot spots *move* (the NT
hot set migrates over the day).  This package models both on top of
the existing seeded-stream machinery, so production traces replay
bit-identically like every other scenario:

* :mod:`repro.loadmodel.mmpp` — a Markov-modulated Poisson arrival
  process (per-phase rates, exponential sojourns);
* :mod:`repro.loadmodel.drift` — the NT hot-spot set migrating on a
  fixed epoch clock (diurnal drift);
* :mod:`repro.loadmodel.trace` — a resumable streaming request
  generator plus a :class:`~repro.simulation.scenario.Scenario`
  materializer (the sequential reference);
* :mod:`repro.loadmodel.soak` — the long-horizon churn driver behind
  ``repro soak``, with windowed metrics and peak-RSS accounting;
* :mod:`repro.loadmodel.rss` — /proc-based RSS probes shared with the
  benchmark suite.
"""

from .drift import DriftParameters, DriftingHotspotTraffic
from .mmpp import MMPPArrivalProcess, MMPPParameters
from .rss import current_rss_bytes, peak_rss_bytes
from .soak import SoakEngine, SoakReport
from .trace import (
    ProductionTraceConfig,
    ProductionTraceGenerator,
    generate_production_scenario,
)

__all__ = [
    "MMPPParameters",
    "MMPPArrivalProcess",
    "DriftParameters",
    "DriftingHotspotTraffic",
    "ProductionTraceConfig",
    "ProductionTraceGenerator",
    "generate_production_scenario",
    "SoakEngine",
    "SoakReport",
    "current_rss_bytes",
    "peak_rss_bytes",
]
