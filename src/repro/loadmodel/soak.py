"""Long-horizon churn driver: the engine behind ``repro soak``.

The soak loop is deliberately *not* the scenario simulator: a scenario
materializes every request up front and pre-schedules every arrival in
the event heap, which is exactly the memory profile a 10^6-admission
run cannot afford.  Here requests *stream* from a
:class:`~repro.loadmodel.trace.ProductionTraceGenerator`, only the
departures of currently-live connections sit in a heap (bounded by the
steady-state population), and all measurement is windowed: per-window
aggregates, streaming latency moments, a fixed-size latency reservoir,
and RSS samples — nothing grows with the admission count.

The decision stream itself is digested into a running SHA-256 so two
runs can be compared bit-for-bit without either retaining 10^6
records; the determinism tests rely on this fingerprint.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..analysis.streaming import Reservoir, StreamingMoments
from ..core.service import DRTPService
from .rss import current_rss_bytes, peak_rss_bytes
from .trace import ProductionTraceGenerator


@dataclass(frozen=True)
class WindowStats:
    """Aggregates for one soak window (a fixed admission count)."""

    index: int
    admissions: int
    accepted: int
    sim_time: float
    active: int
    rss_bytes: int
    wall_seconds: float

    @property
    def admissions_per_second(self) -> float:
        """Wall-clock admission throughput inside this window."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.admissions / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly record for the soak report."""
        return {
            "index": self.index,
            "admissions": self.admissions,
            "accepted": self.accepted,
            "sim_time": round(self.sim_time, 3),
            "active": self.active,
            "rss_bytes": self.rss_bytes,
            "wall_seconds": round(self.wall_seconds, 3),
            "admissions_per_second": round(self.admissions_per_second, 1),
        }


@dataclass
class SoakReport:
    """Everything a soak run proves, in bounded space."""

    admissions: int
    accepted: int
    releases: int
    final_active: int
    sim_time: float
    wall_seconds: float
    peak_rss_bytes: int
    decision_checksum: str
    windows: List[Dict[str, Any]] = field(default_factory=list)
    slab: Dict[str, int] = field(default_factory=dict)
    latency: Dict[str, float] = field(default_factory=dict)
    latency_quantiles: Dict[str, float] = field(default_factory=dict)

    @property
    def acceptance_ratio(self) -> float:
        """Accepted fraction over the whole soak."""
        if self.admissions == 0:
            return 0.0
        return self.accepted / self.admissions

    @property
    def admissions_per_second(self) -> float:
        """Whole-run wall-clock admission throughput."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.admissions / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly report (what ``soak.json`` archives)."""
        return {
            "admissions": self.admissions,
            "accepted": self.accepted,
            "acceptance_ratio": round(self.acceptance_ratio, 4),
            "releases": self.releases,
            "final_active": self.final_active,
            "sim_time": round(self.sim_time, 1),
            "wall_seconds": round(self.wall_seconds, 2),
            "admissions_per_second": round(self.admissions_per_second, 1),
            "peak_rss_bytes": self.peak_rss_bytes,
            "decision_checksum": self.decision_checksum,
            "windows": self.windows,
            "slab": self.slab,
            "latency": self.latency,
            "latency_quantiles": self.latency_quantiles,
        }


class SoakEngine:
    """Streams admissions through a service to a target churn count.

    ``window`` is the admission count per measurement window;
    ``progress`` (when given) receives each :class:`WindowStats` as it
    closes — the CLI's live progress line.
    """

    def __init__(
        self,
        service: DRTPService,
        generator: ProductionTraceGenerator,
        window: int = 10_000,
        reservoir_capacity: int = 512,
        progress: Optional[Callable[[WindowStats], None]] = None,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.service = service
        self.generator = generator
        self.window = window
        self.reservoir_capacity = reservoir_capacity
        self.progress = progress

    def run(self, max_admissions: int) -> SoakReport:
        """Drive churn until ``max_admissions`` admission attempts."""
        if max_admissions <= 0:
            raise ValueError("max_admissions must be positive")
        service = self.service
        departures: List[Tuple[float, int]] = []
        checksum = hashlib.sha256()
        latency = StreamingMoments()
        reservoir = Reservoir(self.reservoir_capacity, random.Random(0))
        windows: List[Dict[str, Any]] = []
        accepted = 0
        releases = 0
        sim_time = 0.0
        window_accepted = 0
        window_started = perf_counter()
        run_started = window_started

        for admissions in range(1, max_admissions + 1):
            request = next(self.generator)
            sim_time = request.arrival_time
            while departures and departures[0][0] <= sim_time:
                _, connection_id = heapq.heappop(departures)
                # A failure campaign may have torn the connection down.
                if service.has_connection(connection_id):
                    service.release(connection_id)
                    releases += 1
            started = perf_counter()
            decision = service.admit(request)
            elapsed = perf_counter() - started
            latency.push(elapsed)
            reservoir.push(elapsed)
            checksum.update(
                "{}:{}\n".format(
                    request.request_id, int(decision.accepted)
                ).encode()
            )
            if decision.accepted:
                accepted += 1
                window_accepted += 1
                heapq.heappush(
                    departures,
                    (request.arrival_time + request.holding_time,
                     request.request_id),
                )
            if admissions % self.window == 0:
                now = perf_counter()
                stats = WindowStats(
                    index=len(windows),
                    admissions=self.window,
                    accepted=window_accepted,
                    sim_time=sim_time,
                    active=service.active_connection_count,
                    rss_bytes=current_rss_bytes(),
                    wall_seconds=now - window_started,
                )
                windows.append(stats.to_dict())
                if self.progress is not None:
                    self.progress(stats)
                window_accepted = 0
                window_started = now

        wall = perf_counter() - run_started
        return SoakReport(
            admissions=max_admissions,
            accepted=accepted,
            releases=releases,
            final_active=service.active_connection_count,
            sim_time=sim_time,
            wall_seconds=wall,
            peak_rss_bytes=peak_rss_bytes(),
            decision_checksum=checksum.hexdigest(),
            windows=windows,
            slab=service.connection_store_stats(),
            latency=latency.as_dict(),
            latency_quantiles=reservoir.as_dict(),
        )
