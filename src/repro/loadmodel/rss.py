"""Resident-set-size probes for soak runs and benchmarks.

Peak RSS is the number a memory refactor must move: admissions/s says
nothing if the process quietly grew to ten times the footprint.  Two
probes, both dependency-free:

* :func:`peak_rss_bytes` — the high-water mark (``VmHWM`` from
  ``/proc``, or ``getrusage`` for the calling process), the headline
  soak-gate number;
* :func:`current_rss_bytes` — the instantaneous ``VmRSS``, sampled per
  window so soak reports can show the *growth curve* (flat after
  warm-up is the claim slab reuse has to prove).

Both return 0 where the probe is unavailable (non-Linux without
``resource``), so callers can archive honest metadata instead of
crashing.
"""

from __future__ import annotations

from typing import Optional


def _proc_status_bytes(field: str, pid: Optional[int] = None) -> int:
    """Read a kB-denominated field from ``/proc/<pid>/status`` (0 when
    unreadable — dead process, non-Linux, permission)."""
    path = "/proc/{}/status".format("self" if pid is None else pid)
    try:
        with open(path) as handle:
            for line in handle:
                if line.startswith(field + ":"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return 0


def current_rss_bytes(pid: Optional[int] = None) -> int:
    """Instantaneous resident set size in bytes (``VmRSS``)."""
    return _proc_status_bytes("VmRSS", pid)


def peak_rss_bytes(pid: Optional[int] = None) -> int:
    """Peak resident set size in bytes.

    For the calling process (``pid=None``) falls back to
    ``getrusage(RUSAGE_SELF)`` where ``/proc`` is unavailable; for
    other pids only the ``/proc`` route exists (``VmHWM``).
    """
    measured = _proc_status_bytes("VmHWM", pid)
    if measured or pid is not None:
        return measured
    try:
        import resource

        # Linux reports ru_maxrss in kilobytes.
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        return 0
