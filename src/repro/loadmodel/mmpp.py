"""Markov-modulated Poisson arrivals.

An MMPP generalizes the paper's Poisson process: the arrival rate is
itself a continuous-time Markov chain over *phases* (calm, bursty,
...), each with an exponential sojourn time.  Within a phase arrivals
are Poisson at that phase's rate; phase switches exploit memorylessness
(the partial interarrival beyond a phase boundary is discarded and
redrawn at the new rate, which is exactly the superposition an MMPP
defines).

Phases cycle deterministically (``0 -> 1 -> ... -> 0``) — the classic
two-phase on/off MMPP is the ``n=2`` case — so the *modulation* stream
and the *arrival* stream stay independent named RNG streams: changing
a phase rate never perturbs when phases switch, the same discipline
:mod:`repro.simulation.rng` enforces everywhere else.

State capture/restore (:meth:`MMPPArrivalProcess.state` /
:meth:`~MMPPArrivalProcess.restore`) makes the process resumable: a
trace generated in two halves is byte-identical to one generated in a
single pass, which the determinism suite asserts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple


@dataclass(frozen=True)
class MMPPParameters:
    """Per-phase arrival rates and mean sojourn times (seconds)."""

    rates: Tuple[float, ...] = (0.4, 1.6)
    sojourn_means: Tuple[float, ...] = (3600.0, 600.0)

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("an MMPP needs at least one phase")
        if len(self.rates) != len(self.sojourn_means):
            raise ValueError(
                "rates and sojourn_means must have equal length "
                "({} vs {})".format(len(self.rates), len(self.sojourn_means))
            )
        for rate in self.rates:
            if rate <= 0:
                raise ValueError(
                    "phase rates must be positive, got {}".format(rate)
                )
        for sojourn in self.sojourn_means:
            if sojourn <= 0:
                raise ValueError(
                    "sojourn means must be positive, got {}".format(sojourn)
                )

    @property
    def num_phases(self) -> int:
        """How many modulation phases the chain cycles through."""
        return len(self.rates)

    @property
    def mean_rate(self) -> float:
        """Long-run arrival rate: sojourn-weighted phase-rate mean."""
        weight = sum(self.sojourn_means)
        return (
            sum(r * s for r, s in zip(self.rates, self.sojourn_means))
            / weight
        )

    @classmethod
    def bursty(
        cls,
        mean_rate: float,
        burst_factor: float = 4.0,
        calm_mean: float = 3600.0,
        burst_mean: float = 600.0,
    ) -> "MMPPParameters":
        """Two-phase calm/burst parameters with a given *long-run* mean.

        The burst phase runs ``burst_factor`` times the calm rate; the
        calm rate is solved so the sojourn-weighted mean equals
        ``mean_rate`` — the knob users actually reason about.
        """
        if mean_rate <= 0:
            raise ValueError("mean_rate must be positive")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if calm_mean <= 0 or burst_mean <= 0:
            raise ValueError("sojourn means must be positive")
        calm_rate = (
            mean_rate * (calm_mean + burst_mean)
            / (calm_mean + burst_factor * burst_mean)
        )
        return cls(
            rates=(calm_rate, burst_factor * calm_rate),
            sojourn_means=(calm_mean, burst_mean),
        )


class MMPPArrivalProcess:
    """Streaming MMPP arrival generator over two named RNG streams.

    Mirrors :class:`~repro.simulation.arrivals.PoissonArrivalProcess`
    (``next`` interarrival draws, an ``arrival_times`` iterator, an
    offered-load helper) and adds phase modulation plus resumable
    state.
    """

    def __init__(
        self,
        params: MMPPParameters,
        arrival_rng: random.Random,
        phase_rng: random.Random,
    ) -> None:
        self.params = params
        self._arrival_rng = arrival_rng
        self._phase_rng = phase_rng
        self._now = 0.0
        self._phase = 0
        self._phase_end = self._draw_sojourn()

    def _draw_sojourn(self) -> float:
        mean = self.params.sojourn_means[self._phase]
        return self._now + self._phase_rng.expovariate(1.0 / mean)

    @property
    def current_phase(self) -> int:
        """The modulation phase the process is currently in."""
        return self._phase

    @property
    def now(self) -> float:
        """The virtual time of the last generated arrival (or phase
        boundary crossed while searching for one)."""
        return self._now

    def next_arrival(self) -> float:
        """Advance to and return the next arrival instant."""
        while True:
            rate = self.params.rates[self._phase]
            candidate = self._now + self._arrival_rng.expovariate(rate)
            if candidate <= self._phase_end:
                self._now = candidate
                return candidate
            # Memoryless: discard the partial draw at the boundary and
            # redraw at the next phase's rate.
            self._now = self._phase_end
            self._phase = (self._phase + 1) % self.params.num_phases
            self._phase_end = self._draw_sojourn()

    def arrival_times(self, until: Optional[float] = None) -> Iterator[float]:
        """Yield arrival instants; unbounded when ``until`` is None."""
        if until is not None and until <= 0:
            raise ValueError("horizon must be positive, got {}".format(until))
        while True:
            arrival = self.next_arrival()
            if until is not None and arrival > until:
                return
            yield arrival

    def expected_offered_load(self, mean_holding: float) -> float:
        """Little's-law mean concurrent connections at the long-run
        rate — the saturation-calibration helper, as for Poisson."""
        return self.params.mean_rate * mean_holding

    # ------------------------------------------------------------------
    # Resume support
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Opaque in-process snapshot of the generator position."""
        return {
            "now": self._now,
            "phase": self._phase,
            "phase_end": self._phase_end,
            "arrival_rng": self._arrival_rng.getstate(),
            "phase_rng": self._phase_rng.getstate(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Rewind/fast-forward to a snapshot from :meth:`state`."""
        self._now = state["now"]
        self._phase = state["phase"]
        self._phase_end = state["phase_end"]
        self._arrival_rng.setstate(state["arrival_rng"])
        self._phase_rng.setstate(state["phase_rng"])
