"""Production-trace generation: streaming, resumable, materializable.

Three views of the same trace, all byte-identical given one seed:

* :class:`ProductionTraceGenerator` — an *unbounded iterator* of
  :class:`~repro.core.connection.ConnectionRequest`; the soak engine
  consumes this so a 10^6-admission run never materializes its
  request list;
* :meth:`ProductionTraceGenerator.state` / ``restore`` — capture the
  generator mid-stream and continue in another instance, for
  checkpointed long runs (the determinism suite proves
  fresh == resumed);
* :func:`generate_production_scenario` — the sequential reference: a
  bounded prefix materialized as an ordinary
  :class:`~repro.simulation.scenario.Scenario`, so production traces
  flow through the existing replay/trace/campaign machinery and
  scenario files unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from ..core.connection import ConnectionRequest
from ..simulation.arrivals import HoldingTimeDistribution
from ..simulation.rng import seeded_rng
from ..simulation.scenario import Scenario
from ..simulation.workload import BandwidthMix
from .drift import DriftingHotspotTraffic, DriftParameters
from .mmpp import MMPPArrivalProcess, MMPPParameters


@dataclass(frozen=True)
class ProductionTraceConfig:
    """Everything that determines a production trace, and nothing else."""

    num_nodes: int
    mmpp: MMPPParameters = field(default_factory=MMPPParameters)
    drift: DriftParameters = field(default_factory=DriftParameters)
    holding: HoldingTimeDistribution = field(
        default_factory=HoldingTimeDistribution
    )
    bw_req: Union[float, BandwidthMix] = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("a trace needs at least 2 nodes")
        if isinstance(self.bw_req, (int, float)) and self.bw_req <= 0:
            raise ValueError("bw_req must be positive")

    @property
    def bandwidth_mix(self) -> BandwidthMix:
        """The bandwidth distribution as a mix (constants wrapped)."""
        if isinstance(self.bw_req, BandwidthMix):
            return self.bw_req
        return BandwidthMix.constant(self.bw_req)

    def expected_offered_load(self) -> float:
        """Little's-law steady-state concurrent-connection estimate."""
        return self.mmpp.mean_rate * self.holding.mean


class ProductionTraceGenerator:
    """Unbounded iterator of production-trace connection requests.

    Draws from five named streams derived from the config seed
    (arrivals, phases, endpoints, holding, bandwidth), mirroring
    :func:`~repro.simulation.scenario.generate_scenario`'s stream
    discipline so any knob changes without perturbing the others.
    """

    def __init__(self, config: ProductionTraceConfig) -> None:
        self.config = config
        seed = config.seed
        self._endpoint_rng = seeded_rng(seed, "loadmodel", "endpoints")
        self._holding_rng = seeded_rng(seed, "loadmodel", "holding")
        self._bw_rng = seeded_rng(seed, "loadmodel", "bandwidth")
        self._process = MMPPArrivalProcess(
            config.mmpp,
            seeded_rng(seed, "loadmodel", "arrivals"),
            seeded_rng(seed, "loadmodel", "phases"),
        )
        self._pattern = DriftingHotspotTraffic(
            config.num_nodes, config.drift, seed
        )
        self._mix = config.bandwidth_mix
        self._next_id = 0

    def __iter__(self) -> Iterator[ConnectionRequest]:
        return self

    def __next__(self) -> ConnectionRequest:
        arrival = self._process.next_arrival()
        source, destination = self._pattern.sample_pair_at(
            self._endpoint_rng, arrival
        )
        request = ConnectionRequest(
            request_id=self._next_id,
            source=source,
            destination=destination,
            bw_req=self._mix.sample(self._bw_rng),
            arrival_time=arrival,
            holding_time=self.config.holding.sample(self._holding_rng),
        )
        self._next_id += 1
        return request

    def take(self, count: int) -> List[ConnectionRequest]:
        """Materialize the next ``count`` requests."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [next(self) for _ in range(count)]

    @property
    def current_phase(self) -> int:
        """The MMPP phase of the last generated arrival."""
        return self._process.current_phase

    # ------------------------------------------------------------------
    # Resume support
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Opaque in-process checkpoint of the full generator."""
        return {
            "next_id": self._next_id,
            "process": self._process.state(),
            "pattern": self._pattern.state(),
            "endpoint_rng": self._endpoint_rng.getstate(),
            "holding_rng": self._holding_rng.getstate(),
            "bw_rng": self._bw_rng.getstate(),
        }

    def restore(self, state: Dict[str, Any]) -> None:
        """Continue from a checkpoint taken with :meth:`state`."""
        self._next_id = state["next_id"]
        self._process.restore(state["process"])
        self._pattern.restore(state["pattern"])
        self._endpoint_rng.setstate(state["endpoint_rng"])
        self._holding_rng.setstate(state["holding_rng"])
        self._bw_rng.setstate(state["bw_rng"])

    @classmethod
    def resumed(
        cls, config: ProductionTraceConfig, state: Dict[str, Any]
    ) -> "ProductionTraceGenerator":
        """A fresh generator fast-forwarded to ``state``."""
        generator = cls(config)
        generator.restore(state)
        return generator


def generate_production_scenario(
    config: ProductionTraceConfig,
    max_requests: Optional[int] = None,
    duration: Optional[float] = None,
) -> Scenario:
    """Materialize a bounded production-trace prefix as a Scenario.

    Bound by request count, by horizon, or both (whichever cuts
    first); at least one bound is required.  The result is a plain
    scenario file — replayable, traceable, campaign-feedable — whose
    request list is byte-identical to streaming the same config
    through :class:`ProductionTraceGenerator`.
    """
    if max_requests is None and duration is None:
        raise ValueError(
            "bound the scenario with max_requests, duration, or both"
        )
    if max_requests is not None and max_requests <= 0:
        raise ValueError("max_requests must be positive")
    if duration is not None and duration <= 0:
        raise ValueError("duration must be positive")
    generator = ProductionTraceGenerator(config)
    requests: List[ConnectionRequest] = []
    while max_requests is None or len(requests) < max_requests:
        request = next(generator)
        if duration is not None and request.arrival_time > duration:
            break
        requests.append(request)
    horizon = duration
    if horizon is None:
        horizon = math.ceil(requests[-1].arrival_time) if requests else 0.0
    mix = config.bandwidth_mix
    return Scenario(
        requests=requests,
        duration=float(horizon),
        metadata={
            "workload": "production",
            "seed": config.seed,
            "num_nodes": config.num_nodes,
            "mmpp_rates": list(config.mmpp.rates),
            "mmpp_sojourn_means": list(config.mmpp.sojourn_means),
            "mean_rate": config.mmpp.mean_rate,
            "hot_count": config.drift.hot_count,
            "hot_fraction": config.drift.hot_fraction,
            "drift_epoch_seconds": config.drift.epoch_seconds,
            "drift_migrate": config.drift.migrate,
            "bw_req": mix.mean_bw,
            "holding_min": config.holding.minimum,
            "holding_max": config.holding.maximum,
        },
    )
