"""Diurnal hot-spot drift: the NT hot set migrating over time.

The paper's NT pattern pre-selects 10 hot destinations once.  Over a
production day the popular egress points move — a different region
wakes up, a different service peaks.  :class:`DriftingHotspotTraffic`
models that as a fixed epoch clock (default: one simulated hour): at
every epoch boundary the ``migrate`` *oldest* hot nodes retire and are
replaced by cold nodes drawn from a per-epoch seeded stream, so the
set turns over FIFO (full turnover every ``hot_count / migrate``
epochs) while endpoint sampling itself stays exactly NT-shaped within
an epoch.

Every epoch's membership is a pure function of ``(seed, epoch)``, so
the hot set at any time is recomputable from scratch — what makes
resumed traces byte-identical to fresh ones.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Tuple

from ..simulation.rng import seeded_rng
from ..simulation.workload import TrafficPattern


@dataclass(frozen=True)
class DriftParameters:
    """Hot-set shape plus the drift clock."""

    hot_count: int = 10
    hot_fraction: float = 0.5
    epoch_seconds: float = 3600.0
    migrate: int = 1

    def __post_init__(self) -> None:
        if self.hot_count <= 0:
            raise ValueError("hot_count must be positive")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if self.epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if not 0 < self.migrate <= self.hot_count:
            raise ValueError("migrate must be in [1, hot_count]")

    @property
    def turnover_seconds(self) -> float:
        """Time until the whole hot set has been replaced once."""
        return self.epoch_seconds * self.hot_count / self.migrate


class DriftingHotspotTraffic(TrafficPattern):
    """Time-aware NT: hot destinations migrate on the epoch clock.

    ``sample_pair_at(rng, time)`` is the primary API; the inherited
    time-free ``sample_pair`` samples at ``t=0`` so the class still
    satisfies the :class:`~repro.simulation.workload.TrafficPattern`
    contract.
    """

    name = "NT-drift"

    def __init__(
        self, num_nodes: int, params: DriftParameters, seed: int
    ) -> None:
        super().__init__(num_nodes)
        if params.hot_count >= num_nodes:
            raise ValueError(
                "hot_count {} needs cold nodes to migrate to in a "
                "{}-node network".format(params.hot_count, num_nodes)
            )
        self.params = params
        self.seed = seed
        self._epoch = 0
        init_rng = seeded_rng(seed, "drift", "init")
        #: FIFO of hot nodes, oldest first (the next to retire).
        self._hot: Deque[int] = deque(
            init_rng.sample(range(num_nodes), params.hot_count)
        )

    # ------------------------------------------------------------------
    # Epoch clock
    # ------------------------------------------------------------------
    def epoch_of(self, time: float) -> int:
        """Which drift epoch ``time`` falls in."""
        if time < 0:
            raise ValueError("time must be non-negative")
        return int(time // self.params.epoch_seconds)

    def _reset(self) -> None:
        self._epoch = 0
        init_rng = seeded_rng(self.seed, "drift", "init")
        self._hot = deque(
            init_rng.sample(range(self.num_nodes), self.params.hot_count)
        )

    def _advance_to(self, epoch: int) -> None:
        if epoch < self._epoch:
            # Time went backwards (arbitrary queries): recompute from
            # scratch — membership is a pure function of (seed, epoch).
            self._reset()
        while self._epoch < epoch:
            step_rng = seeded_rng(self.seed, "drift", self._epoch + 1)
            for _ in range(self.params.migrate):
                self._hot.popleft()
            cold = sorted(set(range(self.num_nodes)) - set(self._hot))
            for node in step_rng.sample(cold, self.params.migrate):
                self._hot.append(node)
            self._epoch += 1

    def hot_nodes_at(self, time: float) -> Tuple[int, ...]:
        """The hot destination set in ``time``'s epoch (FIFO order)."""
        self._advance_to(self.epoch_of(time))
        return tuple(self._hot)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_pair_at(
        self, rng: random.Random, time: float
    ) -> Tuple[int, int]:
        """NT endpoint sampling against the hot set at ``time``."""
        self._advance_to(self.epoch_of(time))
        if rng.random() < self.params.hot_fraction:
            destination = self._hot[rng.randrange(len(self._hot))]
        else:
            destination = rng.randrange(self.num_nodes)
        source = rng.randrange(self.num_nodes - 1)
        if source >= destination:
            source += 1
        return source, destination

    def sample_pair(self, rng: random.Random) -> Tuple[int, int]:
        """Time-free sampling at ``t=0`` (TrafficPattern contract)."""
        return self.sample_pair_at(rng, 0.0)

    # ------------------------------------------------------------------
    # Resume support
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Snapshot of the drift position (epoch + hot-set FIFO)."""
        return {"epoch": self._epoch, "hot": list(self._hot)}

    def restore(self, state: Dict[str, Any]) -> None:
        """Restore a snapshot from :meth:`state`."""
        self._epoch = state["epoch"]
        self._hot = deque(state["hot"])
