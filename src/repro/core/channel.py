"""Channels — the reserved routes a DR-connection is made of.

Section 2: "Each dependable real-time (DR-) connection consists of one
*primary* and one or more *backup* channels."  A channel couples a
route with a role and a lifecycle state:

* a **primary** channel carries the real-time traffic and holds an
  exclusive bandwidth reservation on every link of its route;
* a **backup** channel carries no real-time traffic until *activated*;
  it holds only a registration against the shared spare pool of each
  link it crosses (backup multiplexing).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from ..topology.graph import Route
from .errors import ConnectionStateError


class ChannelRole(enum.Enum):
    """Which leg of a DR-connection a channel implements."""

    PRIMARY = "primary"
    BACKUP = "backup"


class ChannelState(enum.Enum):
    """Lifecycle of a channel.

    ``RESERVED``: resources held, ready (primaries start here and carry
    traffic; backups start here and stay idle).
    ``ACTIVE``: a backup promoted to carry traffic after a failure.
    ``FAILED``: the route crosses a failed component.
    ``RELEASED``: resources returned.
    """

    RESERVED = "reserved"
    ACTIVE = "active"
    FAILED = "failed"
    RELEASED = "released"


@dataclass
class Channel:
    """One reserved route with role and lifecycle state.

    ``registration_index`` identifies which of a connection's backup
    registrations this channel holds in the per-link backup tables
    (0 = first backup); primaries ignore it.
    """

    role: ChannelRole
    route: Route
    state: ChannelState = ChannelState.RESERVED
    registration_index: int = 0

    def registration_key(self, connection_id: int):
        """Per-link backup-table key for this channel's registrations."""
        if self.registration_index == 0:
            return connection_id
        return (connection_id, self.registration_index)

    @property
    def hop_count(self) -> int:
        return self.route.hop_count

    def crosses(self, link_id: int) -> bool:
        return self.route.uses_link(link_id)

    def mark_failed(self) -> None:
        if self.state is ChannelState.RELEASED:
            raise ConnectionStateError("cannot fail a released channel")
        self.state = ChannelState.FAILED

    def activate(self) -> None:
        """Promote a reserved backup into the traffic-carrying role."""
        if self.role is not ChannelRole.BACKUP:
            raise ConnectionStateError("only backup channels are activated")
        if self.state is not ChannelState.RESERVED:
            raise ConnectionStateError(
                "cannot activate a backup in state {}".format(self.state)
            )
        self.state = ChannelState.ACTIVE
        self.role = ChannelRole.PRIMARY

    def release(self) -> None:
        self.state = ChannelState.RELEASED
