"""Per-router DR-connection managers (Section 2.2's architecture).

"To support the DR-connection service, every router is equipped with a
DR-connection manager which consists of two modules: one routes backup
channels and the other multiplexes backups."  The rest of this library
is logically centralized for simulation speed; this module provides
the faithful *distributed* view — one :class:`RouterNode` per switch,
each owning only the ledgers of its outgoing links — plus a
:class:`DistributedControlPlane` that performs connection
establishment as actual hop-by-hop message processing with explicit
message counting.

The distributed walk and the centralized transaction in
:mod:`repro.core.admission` are behaviorally identical (the test suite
asserts it); the value here is architectural fidelity and the control-
message accounting the overhead analysis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..network.state import BW_EPSILON, NetworkState
from ..topology.graph import Network, Route
from .errors import SignalingError
from .multiplexing import ResizeOutcome, SparePolicy
from .signaling import BackupRegisterPacket, BackupReleasePacket


class DRConnectionManager:
    """One router's manager: multiplexes backups on its own links.

    The router keeps *only* per-own-link state — the backup-channel
    table and APLV of each outgoing link — which is the paper's answer
    to the ``O(n × average-path-length)`` scalability problem: the
    LSETs needed to maintain APLVs arrive piggybacked on the register
    and release packets rather than being stored anywhere.
    """

    def __init__(
        self, node: int, network: Network, state: NetworkState,
        policy: SparePolicy,
    ) -> None:
        self.node = node
        self._state = state
        self._policy = policy
        self._own_links = tuple(
            link.link_id for link in network.out_links(node)
        )

    @property
    def own_links(self) -> Tuple[int, ...]:
        return self._own_links

    def _check_owned(self, link_id: int) -> None:
        if link_id not in self._own_links:
            raise SignalingError(
                "router {} does not own link {}".format(self.node, link_id)
            )

    # ------------------------------------------------------------------
    # Packet handling (Section 2.2's four-step management, per hop)
    # ------------------------------------------------------------------
    def handle_register(
        self, packet: BackupRegisterPacket, out_link: int
    ) -> Optional[ResizeOutcome]:
        """Process a backup-path register packet for one outgoing link.

        Checks available resources, registers the backup in the link's
        backup-channel table, updates the APLV from the piggybacked
        LSET and resizes the spare pool.  Returns the resize outcome,
        or ``None`` when the router *rejects* the request (the caller
        then sends the release packet back upstream).
        """
        self._check_owned(out_link)
        ledger = self._state.ledger(out_link)
        if ledger.backup_headroom() + BW_EPSILON < packet.bw_req:
            return None
        ledger.register_backup(
            packet.registration_key, packet.primary_lset, packet.bw_req
        )
        return self._policy.resize(ledger)

    def handle_release(
        self, packet: BackupReleasePacket, out_link: int
    ) -> ResizeOutcome:
        """Process a backup-path release packet for one outgoing link."""
        self._check_owned(out_link)
        ledger = self._state.ledger(out_link)
        ledger.release_backup(packet.registration_key)
        return self._policy.resize(ledger)

    def handle_primary_reserve(self, out_link: int, bw: float) -> bool:
        """Reserve primary bandwidth on one owned link (False = reject)."""
        self._check_owned(out_link)
        ledger = self._state.ledger(out_link)
        if ledger.primary_headroom() + BW_EPSILON < bw:
            return False
        ledger.reserve_primary(bw)
        return True

    def handle_primary_release(self, out_link: int, bw: float) -> None:
        self._check_owned(out_link)
        ledger = self._state.ledger(out_link)
        ledger.release_primary(bw)
        self._policy.resize(ledger)


@dataclass
class WalkResult:
    """Outcome of a hop-by-hop signaling walk.

    The fault-accounting fields mirror
    :class:`~repro.core.signaling.RegistrationResult` and only move
    when the control plane was built with a fault injector.
    """

    success: bool
    messages: int = 0
    rejected_link: Optional[int] = None
    resizes: List[ResizeOutcome] = field(default_factory=list)
    attempts: int = 1
    drops: int = 0
    duplicates: int = 0
    crashes: int = 0
    delay: float = 0.0
    gave_up: bool = False


class DistributedControlPlane:
    """Hop-by-hop DR-connection signaling across router objects.

    Message accounting: one message per hop of every packet walk,
    including the unwind walk a mid-path rejection triggers — the
    quantity a deployment would see on the wire for connection
    management (reported next to BF's CDP counts by the overhead
    analysis).

    With a ``injector``/``retry_policy`` pair the register walks become
    lossy (drop/duplicate/delay/crash per the injector's plan) and the
    plane retransmits like a real signaling source: timeout, idempotent
    source-initiated release of the partial walk, retry.  Every message
    of every attempt — including the unwind walks — lands in
    ``messages_sent``, which is exactly the retry amplification a
    deployment would pay on the wire.
    """

    def __init__(
        self, network: Network, state: NetworkState, policy: SparePolicy,
        injector=None, retry_policy=None,
    ) -> None:
        self.network = network
        self.state = state
        self.injector = injector
        self.retry_policy = retry_policy
        self.routers: Dict[int, DRConnectionManager] = {
            node: DRConnectionManager(node, network, state, policy)
            for node in network.nodes()
        }
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # Primary establishment
    # ------------------------------------------------------------------
    def reserve_primary(self, route: Route, bw: float) -> WalkResult:
        """Walk a primary-setup packet along the route."""
        result = WalkResult(success=True)
        reserved: List[int] = []
        for link_id in route.link_ids:
            router = self.routers[self.network.link(link_id).src]
            result.messages += 1
            if not router.handle_primary_reserve(link_id, bw):
                result.success = False
                result.rejected_link = link_id
                # Teardown message walks back upstream.
                for undo in reversed(reserved):
                    self.routers[
                        self.network.link(undo).src
                    ].handle_primary_release(undo, bw)
                    result.messages += 1
                break
            reserved.append(link_id)
        self.messages_sent += result.messages
        return result

    def release_primary(self, route: Route, bw: float) -> int:
        messages = 0
        for link_id in route.link_ids:
            router = self.routers[self.network.link(link_id).src]
            router.handle_primary_release(link_id, bw)
            messages += 1
        self.messages_sent += messages
        return messages

    # ------------------------------------------------------------------
    # Backup registration
    # ------------------------------------------------------------------
    def register_backup(self, packet: BackupRegisterPacket) -> WalkResult:
        """Walk a register packet; a rejecting router answers with a
        release packet that unwinds upstream registrations.  Under
        fault injection the walk retries per the retry policy."""
        if self.injector is not None:
            return self._register_backup_faulty(packet)
        result = WalkResult(success=True)
        registered: List[int] = []
        for link_id in packet.backup_route.link_ids:
            router = self.routers[self.network.link(link_id).src]
            result.messages += 1
            outcome = router.handle_register(packet, link_id)
            if outcome is None:
                result.success = False
                result.rejected_link = link_id
                release = BackupReleasePacket(
                    connection_id=packet.connection_id,
                    backup_route=packet.backup_route,
                    primary_lset=packet.primary_lset,
                    backup_index=packet.backup_index,
                )
                for undo in reversed(registered):
                    self.routers[
                        self.network.link(undo).src
                    ].handle_release(release, undo)
                    result.messages += 1
                result.resizes = []
                break
            result.resizes.append(outcome)
            registered.append(link_id)
        self.messages_sent += result.messages
        return result

    def release_backup(self, packet: BackupReleasePacket) -> int:
        messages = 0
        for link_id in packet.backup_route.link_ids:
            router = self.routers[self.network.link(link_id).src]
            router.handle_release(packet, link_id)
            messages += 1
        self.messages_sent += messages
        return messages

    # ------------------------------------------------------------------
    # Faulty signaling (drop/duplicate/delay/crash + retransmission)
    # ------------------------------------------------------------------
    def _register_backup_faulty(self, packet: BackupRegisterPacket) -> WalkResult:
        result = WalkResult(success=False)
        result.attempts = 0
        while True:
            result.attempts += 1
            status = self._faulty_walk_once(packet, result)
            if status != "faulted":
                self.messages_sent += result.messages
                return result
            self._unwind_partial(packet, result)
            if self.retry_policy is None or self.retry_policy.gives_up(
                result.attempts, result.delay
            ):
                result.gave_up = True
                self.messages_sent += result.messages
                return result
            result.delay += self.retry_policy.backoff(
                result.attempts, self.injector.retry_rng
            )

    def _faulty_walk_once(self, packet: BackupRegisterPacket, result: WalkResult) -> str:
        route = packet.backup_route.link_ids
        crash_at = self.injector.crash_hop(len(route))
        result.resizes = []
        result.success = False
        for hop, link_id in enumerate(route):
            event, delay = self.injector.sample_hop()
            result.delay += delay
            result.messages += 1
            if event == "drop":
                result.drops += 1
                return "faulted"
            if event == "duplicate":
                result.duplicates += 1
                result.messages += 1
            router = self.routers[self.network.link(link_id).src]
            ledger = self.state.ledger(link_id)
            if ledger.has_backup(packet.registration_key):
                # Duplicate delivery (possibly of an earlier attempt's
                # surviving registration): absorbed idempotently.
                outcome = None
            else:
                outcome = router.handle_register(packet, link_id)
                if outcome is None:
                    self._unwind_partial(packet, result)
                    result.rejected_link = link_id
                    result.resizes = []
                    return "rejected"
            if outcome is not None:
                result.resizes.append(outcome)
            if crash_at == hop:
                result.crashes += 1
                return "faulted"
        result.success = True
        return "ok"

    def _unwind_partial(self, packet: BackupRegisterPacket, result: WalkResult) -> None:
        """Source-initiated idempotent release of a partial walk: one
        message per hop of the full route (the source cannot know how
        far the register packet got)."""
        release = BackupReleasePacket(
            connection_id=packet.connection_id,
            backup_route=packet.backup_route,
            primary_lset=packet.primary_lset,
            backup_index=packet.backup_index,
        )
        for link_id in packet.backup_route.link_ids:
            result.messages += 1
            if self.state.ledger(link_id).has_backup(packet.registration_key):
                router = self.routers[self.network.link(link_id).src]
                router.handle_release(release, link_id)
