"""Admission control — DR-connection management steps 1–3.

Section 2.2 lists the four management steps of a DR-connection; the
admission controller performs the first three atomically:

1. select a primary route and reserve resources;
2. find a backup route;
3. send the backup-path register packet along it.

Route *selection* is delegated to the bound routing scheme; this
module owns the resource transaction: reserving primary bandwidth hop
by hop, running backup registration, and rolling everything back when
any stage fails, so a rejected request never leaks reservations.

Policy knob: ``require_backup`` (default True) rejects a request whose
backup cannot be routed or registered — a DR-connection without a
backup offers no dependability.  With ``require_backup = False`` the
connection is admitted unprotected, which the fault-tolerance metric
then counts against the scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..kernels.apply import batch_release_primary, batch_reserve_primary
from ..network.state import BW_EPSILON, NetworkState
from ..routing.base import RoutePlan
from ..topology.graph import Route
from .channel import Channel, ChannelRole
from .connection import ConnectionRequest, DRConnection
from .multiplexing import SparePolicy
from .signaling import (
    BackupRegisterPacket,
    BackupReleasePacket,
    RegistrationResult,
    register_backup_path,
    release_backup_path,
)


@dataclass
class AdmissionDecision:
    """The controller's verdict on one request.

    ``degraded`` marks a connection admitted *unprotected* because
    backup signaling exhausted its retries under injected faults (not
    because resources were missing) — the caller is expected to queue
    it for background backup re-establishment (Section 2.3 under
    adversity).  ``registrations`` collects the signaling outcome of
    every backup walk attempted, for fault/retry accounting.
    """

    request: ConnectionRequest
    plan: RoutePlan
    connection: Optional[DRConnection] = None
    reason: str = "ok"
    backup_registration_deficit: float = 0.0
    degraded: bool = False
    registrations: List[RegistrationResult] = field(default_factory=list)

    @property
    def accepted(self) -> bool:
        return self.connection is not None


#: Rejection reason strings (stable identifiers used by the reports).
REASON_OK = "ok"
REASON_NO_PRIMARY = "no-primary-route"
REASON_PRIMARY_RESERVATION = "primary-reservation-failed"
REASON_NO_BACKUP_ROUTE = "no-backup-route"
REASON_BACKUP_REGISTRATION = "backup-registration-rejected"


class AdmissionController:
    """Transactional establishment/teardown of DR-connections."""

    def __init__(
        self,
        state: NetworkState,
        spare_policy: SparePolicy,
        require_backup: bool = True,
        injector=None,
        retry_policy=None,
        degrade_on_fault: Optional[bool] = None,
        metrics=None,
        trace=None,
    ) -> None:
        """``injector``/``retry_policy`` subject backup signaling to
        fault injection with retransmission (see
        :mod:`repro.core.signaling`).  ``degrade_on_fault`` (default:
        on whenever an injector is present) admits a connection
        unprotected when its backup signaling exhausts retries, instead
        of rejecting it — the decision is flagged ``degraded`` so the
        service can re-establish the backup in the background.
        ``metrics`` (a :class:`~repro.metrics.ServiceMetrics`) receives
        per-walk signaling accounting when present; ``trace`` (a
        :class:`~repro.observability.TraceCollector`) receives spans
        for every register/release walk."""
        self._state = state
        self._policy = spare_policy
        self._require_backup = require_backup
        self._injector = injector
        self._retry_policy = retry_policy
        self._metrics = metrics
        self._trace = trace
        if degrade_on_fault is None:
            degrade_on_fault = injector is not None
        self._degrade_on_fault = degrade_on_fault
        self._next_seq = 0

    @property
    def spare_policy(self) -> SparePolicy:
        return self._policy

    def bind_trace(self, trace) -> None:
        """Attach a span collector after construction."""
        self._trace = trace

    # ------------------------------------------------------------------
    # Establishment
    # ------------------------------------------------------------------
    def admit(self, request: ConnectionRequest, plan: RoutePlan) -> AdmissionDecision:
        decision = AdmissionDecision(request=request, plan=plan)
        if plan.primary is None:
            decision.reason = REASON_NO_PRIMARY
            return decision
        if not self._reserve_primary(plan.primary, request.bw_req):
            decision.reason = REASON_PRIMARY_RESERVATION
            return decision

        backup_channel: Optional[Channel] = None
        extra_channels: List[Channel] = []
        if plan.backup is None:
            if self._require_backup:
                self._release_primary(plan.primary, request.bw_req)
                decision.reason = REASON_NO_BACKUP_ROUTE
                return decision
        else:
            packet = BackupRegisterPacket(
                connection_id=request.request_id,
                backup_route=plan.backup,
                primary_lset=plan.primary.lset,
                bw_req=request.bw_req,
            )
            registration = register_backup_path(
                self._state, self._policy, packet,
                self._injector, self._retry_policy,
                metrics=self._metrics, trace=self._trace,
            )
            decision.registrations.append(registration)
            if not registration.success:
                if registration.gave_up and self._degrade_on_fault:
                    # Signaling faults, not resources, defeated the
                    # backup: admit unprotected and let the service
                    # re-establish protection in the background.
                    decision.degraded = True
                elif self._require_backup:
                    self._release_primary(plan.primary, request.bw_req)
                    decision.reason = REASON_BACKUP_REGISTRATION
                    return decision
                # Otherwise admitted unprotected: primary stands.
            else:
                decision.backup_registration_deficit = registration.total_deficit
                backup_channel = Channel(
                    role=ChannelRole.BACKUP, route=plan.backup
                )
                # Further backups are best-effort: a rejected extra
                # never blocks admission (the first backup already
                # delivers the dependability guarantee).
                for index, route in enumerate(plan.extra_backups, start=1):
                    extra = BackupRegisterPacket(
                        connection_id=request.request_id,
                        backup_route=route,
                        primary_lset=plan.primary.lset,
                        bw_req=request.bw_req,
                        backup_index=index,
                    )
                    outcome = register_backup_path(
                        self._state, self._policy, extra,
                        self._injector, self._retry_policy,
                        metrics=self._metrics, trace=self._trace,
                    )
                    decision.registrations.append(outcome)
                    if outcome.success:
                        decision.backup_registration_deficit += (
                            outcome.total_deficit
                        )
                        extra_channels.append(
                            Channel(
                                role=ChannelRole.BACKUP,
                                route=route,
                                registration_index=index,
                            )
                        )

        connection = DRConnection(
            connection_id=request.request_id,
            request=request,
            primary=Channel(role=ChannelRole.PRIMARY, route=plan.primary),
            backup=backup_channel,
            extra_backups=extra_channels,
            established_seq=self._next_seq,
        )
        self._next_seq += 1
        decision.connection = connection
        return decision

    # ------------------------------------------------------------------
    # Teardown (management step 4)
    # ------------------------------------------------------------------
    def release(self, connection: DRConnection) -> None:
        """Release primary and backup resources of a connection.

        Released primary bandwidth returns to the free pool; the
        per-link resize lets deficient spare pools absorb it, per
        Section 5's replenishment rule.
        """
        self._release_primary(connection.primary_route, connection.bw_req)
        for channel in connection.all_backups:
            release_backup_path(
                self._state,
                self._policy,
                BackupReleasePacket(
                    connection_id=connection.connection_id,
                    backup_route=channel.route,
                    primary_lset=connection.primary_route.lset,
                    backup_index=channel.registration_index,
                ),
                trace=self._trace,
            )
        connection.terminate()

    # ------------------------------------------------------------------
    # Primary reservation plumbing
    # ------------------------------------------------------------------
    def _reserve_primary(self, route: Route, bw: float) -> bool:
        # Batched validate-then-apply commit; the per-hop loop below
        # stays as the fallback and lockstep reference (see
        # repro.kernels.apply for the equivalence argument).
        batched = batch_reserve_primary(self._state, route.link_ids, bw)
        if batched is not None:
            return batched
        reserved: List[int] = []
        for link_id in route.link_ids:
            ledger = self._state.ledger(link_id)
            if ledger.primary_headroom() + BW_EPSILON < bw:
                for undo in reversed(reserved):
                    self._state.ledger(undo).release_primary(bw)
                return False
            ledger.reserve_primary(bw)
            reserved.append(link_id)
        return True

    def _release_primary(self, route: Route, bw: float) -> None:
        if batch_release_primary(self._state, self._policy, route.link_ids, bw):
            return
        for link_id in route.link_ids:
            ledger = self._state.ledger(link_id)
            ledger.release_primary(bw)
            # Freed bandwidth may cover a spare deficit on this link.
            self._policy.resize(ledger)
