"""Backup-path signaling (Section 2.2).

After the primary channel is placed, the source sends a *backup-path
register packet* along the chosen backup route.  The packet carries
the ``LSET`` of the corresponding primary so that every router on the
path can update the APLV of the link the backup traverses without
storing any per-connection state beyond its own links — the paper's
answer to the ``O(n × average-path-length)`` scalability problem.

Each router on the path:

1. checks the amount of available resources on the outgoing link
   (a backup needs ``total_bw − prime_bw ≥ bw_req``; reserved spare is
   shareable);
2. registers the backup in the link's backup-channel table and updates
   the link's APLV using the piggybacked ``LSET``;
3. asks the multiplexing policy to resize the spare pool;
4. forwards the packet.

A router that rejects the request answers with a *backup-release
packet* (also carrying the primary's ``LSET``) that unwinds the
registrations made upstream.  :func:`register_backup_path` performs
the walk and the unwind atomically from the caller's perspective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..network.state import BW_EPSILON, NetworkState
from ..topology.graph import Route
from .errors import SignalingError
from .multiplexing import ResizeOutcome, SparePolicy


@dataclass(frozen=True)
class BackupRegisterPacket:
    """The backup-path register packet of Section 2.2.

    ``backup_index`` distinguishes the channels of a multi-backup
    DR-connection (0 = first backup); each backup registers in the
    per-link backup-channel tables under its own key.
    """

    connection_id: int
    backup_route: Route
    primary_lset: FrozenSet[int]
    bw_req: float
    backup_index: int = 0

    def __post_init__(self) -> None:
        if self.bw_req <= 0:
            raise SignalingError("bw_req must be positive")
        if self.backup_index < 0:
            raise SignalingError("backup_index must be >= 0")

    @property
    def registration_key(self):
        """Per-link registry key; plain connection id for the first
        backup (the common, paper-default case)."""
        if self.backup_index == 0:
            return self.connection_id
        return (self.connection_id, self.backup_index)


@dataclass(frozen=True)
class BackupReleasePacket:
    """The backup-path release packet (teardown or upstream unwind)."""

    connection_id: int
    backup_route: Route
    primary_lset: FrozenSet[int]
    backup_index: int = 0

    @property
    def registration_key(self):
        if self.backup_index == 0:
            return self.connection_id
        return (self.connection_id, self.backup_index)


@dataclass
class RegistrationResult:
    """Outcome of walking a register packet along the backup route."""

    success: bool
    rejected_link: Optional[int] = None
    resizes: List[ResizeOutcome] = field(default_factory=list)
    hops_signaled: int = 0

    @property
    def total_deficit(self) -> float:
        """Spare bandwidth that could not be provisioned along the
        route; positive means conflicting backups were multiplexed."""
        return sum(outcome.deficit for outcome in self.resizes)


def register_backup_path(
    state: NetworkState,
    policy: SparePolicy,
    packet: BackupRegisterPacket,
) -> RegistrationResult:
    """Walk the register packet hop by hop; unwind on rejection."""
    result = RegistrationResult(success=True)
    registered: List[int] = []
    for link_id in packet.backup_route.link_ids:
        ledger = state.ledger(link_id)
        result.hops_signaled += 1
        if ledger.backup_headroom() + BW_EPSILON < packet.bw_req:
            # Reject here; send the release packet back upstream.
            _unwind(state, policy, packet.registration_key, registered)
            result.success = False
            result.rejected_link = link_id
            result.resizes = []
            return result
        ledger.register_backup(
            packet.registration_key, packet.primary_lset, packet.bw_req
        )
        result.resizes.append(policy.resize(ledger))
        registered.append(link_id)
    return result


def release_backup_path(
    state: NetworkState,
    policy: SparePolicy,
    packet: BackupReleasePacket,
) -> List[ResizeOutcome]:
    """Walk a release packet along the backup route, shrinking spare
    pools as registrations disappear."""
    outcomes = []
    for link_id in packet.backup_route.link_ids:
        ledger = state.ledger(link_id)
        ledger.release_backup(packet.registration_key)
        outcomes.append(policy.resize(ledger))
    return outcomes


def _unwind(
    state: NetworkState,
    policy: SparePolicy,
    registration_key,
    registered: List[int],
) -> None:
    """Model the upstream release packet: undo registrations in
    reverse hop order, resizing each spare pool back down."""
    for link_id in reversed(registered):
        ledger = state.ledger(link_id)
        ledger.release_backup(registration_key)
        policy.resize(ledger)
