"""Backup-path signaling (Section 2.2).

After the primary channel is placed, the source sends a *backup-path
register packet* along the chosen backup route.  The packet carries
the ``LSET`` of the corresponding primary so that every router on the
path can update the APLV of the link the backup traverses without
storing any per-connection state beyond its own links — the paper's
answer to the ``O(n × average-path-length)`` scalability problem.

Each router on the path:

1. checks the amount of available resources on the outgoing link
   (a backup needs ``total_bw − prime_bw ≥ bw_req``; reserved spare is
   shareable);
2. registers the backup in the link's backup-channel table and updates
   the link's APLV using the piggybacked ``LSET``;
3. asks the multiplexing policy to resize the spare pool;
4. forwards the packet.

A router that rejects the request answers with a *backup-release
packet* (also carrying the primary's ``LSET``) that unwinds the
registrations made upstream.  :func:`register_backup_path` performs
the walk and the unwind atomically from the caller's perspective.

Under fault injection (:mod:`repro.faults`) the walk stops being
atomic: register packets can be dropped or duplicated between hops,
and a router can crash right after registering — both strand *partial*
registrations along the route.  :func:`register_backup_path` then
behaves like a real signaling source: its timeout fires, it sends an
idempotent source-initiated release (:func:`unwind_backup_path`) that
rolls the partial walk back exactly, and it retries under the caller's
:class:`~repro.faults.retry.RetryPolicy` until success, a genuine
resource rejection, or exhaustion.  Duplicated deliveries are absorbed
by checking the link's backup table before registering, so signaling
is idempotent end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from ..kernels.apply import batch_register_walk, batch_release_walk
from ..network.state import BW_EPSILON, NetworkState
from ..topology.graph import Route
from .errors import SignalingError
from .multiplexing import ResizeOutcome, SparePolicy


@dataclass(frozen=True)
class BackupRegisterPacket:
    """The backup-path register packet of Section 2.2.

    ``backup_index`` distinguishes the channels of a multi-backup
    DR-connection (0 = first backup); each backup registers in the
    per-link backup-channel tables under its own key.
    """

    connection_id: int
    backup_route: Route
    primary_lset: FrozenSet[int]
    bw_req: float
    backup_index: int = 0

    def __post_init__(self) -> None:
        if self.bw_req <= 0:
            raise SignalingError("bw_req must be positive")
        if self.backup_index < 0:
            raise SignalingError("backup_index must be >= 0")

    @property
    def registration_key(self):
        """Per-link registry key; plain connection id for the first
        backup (the common, paper-default case)."""
        if self.backup_index == 0:
            return self.connection_id
        return (self.connection_id, self.backup_index)


@dataclass(frozen=True)
class BackupReleasePacket:
    """The backup-path release packet (teardown or upstream unwind)."""

    connection_id: int
    backup_route: Route
    primary_lset: FrozenSet[int]
    backup_index: int = 0

    @property
    def registration_key(self):
        if self.backup_index == 0:
            return self.connection_id
        return (self.connection_id, self.backup_index)


@dataclass
class RegistrationResult:
    """Outcome of walking a register packet along the backup route.

    The fault-accounting fields stay at their defaults for the
    fault-free walk; under injection they record what the signaling
    survived: ``attempts`` counts walks (1 = no retry), ``gave_up``
    distinguishes "retries exhausted by faults" from a genuine
    resource rejection (``rejected_link`` set), and ``delay``
    accumulates injected signaling latency plus retry backoff.
    """

    success: bool
    rejected_link: Optional[int] = None
    resizes: List[ResizeOutcome] = field(default_factory=list)
    hops_signaled: int = 0
    attempts: int = 1
    drops: int = 0
    duplicates: int = 0
    crashes: int = 0
    delay: float = 0.0
    gave_up: bool = False

    @property
    def total_deficit(self) -> float:
        """Spare bandwidth that could not be provisioned along the
        route; positive means conflicting backups were multiplexed."""
        return sum(outcome.deficit for outcome in self.resizes)

    @property
    def retries(self) -> int:
        return self.attempts - 1


def register_backup_path(
    state: NetworkState,
    policy: SparePolicy,
    packet: BackupRegisterPacket,
    injector=None,
    retry_policy=None,
    metrics=None,
    trace=None,
) -> RegistrationResult:
    """Walk the register packet hop by hop; unwind on rejection.

    ``injector`` (a :class:`~repro.faults.injector.FaultInjector`)
    subjects the walk to drop/duplicate/delay/crash faults;
    ``retry_policy`` (a :class:`~repro.faults.retry.RetryPolicy`)
    governs retransmission after a faulted walk.  Without an injector
    the walk is the paper's atomic register/unwind and never retries.
    A faulted walk with no retry policy is unwound and reported with
    ``gave_up=True`` after the single attempt.

    ``metrics`` (a :class:`~repro.metrics.ServiceMetrics`) receives
    the walk's accounting — walks, hops, retries, drops, duplicates,
    crashes, give-ups — once, after the outcome is final.  ``trace``
    (a :class:`~repro.observability.TraceCollector`) records the walk
    as a ``signal.register`` span with one ``signal.attempt`` child
    per retransmission under fault injection.
    """
    if trace is None:
        return _register(
            state, policy, packet, injector, retry_policy, metrics
        )
    with trace.span(
        "signal.register",
        category="signaling",
        connection=packet.connection_id,
        backup_index=packet.backup_index,
        hops=len(packet.backup_route.link_ids),
    ) as span:
        result = _register(
            state, policy, packet, injector, retry_policy, metrics,
            trace=trace,
        )
        span.tag(
            success=result.success,
            attempts=result.attempts,
            hops_signaled=result.hops_signaled,
            gave_up=result.gave_up,
        )
        if result.rejected_link is not None:
            span.tag(rejected_link=result.rejected_link)
        if result.drops or result.duplicates or result.crashes:
            span.tag(
                drops=result.drops,
                duplicates=result.duplicates,
                crashes=result.crashes,
                delay=result.delay,
            )
    return result


def _register(
    state: NetworkState,
    policy: SparePolicy,
    packet: BackupRegisterPacket,
    injector,
    retry_policy,
    metrics,
    trace=None,
) -> RegistrationResult:
    """Dispatch to the fault-free or lossy walk; publish metrics."""
    if injector is None:
        result = _register_walk(state, policy, packet)
    else:
        result = _register_with_faults(
            state, policy, packet, injector, retry_policy, trace=trace
        )
    if metrics is not None:
        metrics.observe_signaling(result)
    return result


def _register_walk(
    state: NetworkState,
    policy: SparePolicy,
    packet: BackupRegisterPacket,
) -> RegistrationResult:
    """The fault-free atomic walk.

    Dispatches to the batched validate-then-apply commit
    (:func:`repro.kernels.apply.batch_register_walk`) — one fused
    loop and one dirty-set transaction per admission, bit-identical
    to the per-hop walk below, which remains both the fallback for
    routes the batch cannot prove equivalent and the reference the
    lockstep regression suite diffs against."""
    batched = batch_register_walk(
        state,
        policy,
        packet.registration_key,
        packet.backup_route.link_ids,
        packet.primary_lset,
        packet.bw_req,
    )
    if batched is not None:
        rejected_link, hops, resizes = batched
        if rejected_link is None:
            return RegistrationResult(
                success=True, resizes=resizes, hops_signaled=hops
            )
        return RegistrationResult(
            success=False, rejected_link=rejected_link, hops_signaled=hops
        )
    result = RegistrationResult(success=True)
    registered: List[int] = []
    for link_id in packet.backup_route.link_ids:
        ledger = state.ledger(link_id)
        result.hops_signaled += 1
        if ledger.backup_headroom() + BW_EPSILON < packet.bw_req:
            # Reject here; send the release packet back upstream.
            _unwind(state, policy, packet.registration_key, registered)
            result.success = False
            result.rejected_link = link_id
            result.resizes = []
            return result
        ledger.register_backup(
            packet.registration_key, packet.primary_lset, packet.bw_req
        )
        result.resizes.append(policy.resize(ledger))
        registered.append(link_id)
    return result


def _register_with_faults(
    state: NetworkState,
    policy: SparePolicy,
    packet: BackupRegisterPacket,
    injector,
    retry_policy,
    trace=None,
) -> RegistrationResult:
    """Lossy register walk with retransmission.

    Each attempt walks until success, a resource rejection, or an
    injected fault (drop or router crash).  Faulted attempts leave
    partial registrations — exactly what a real crash or loss leaves —
    which the source-side unwind then rolls back idempotently before
    the next attempt, so retries always start from clean state and the
    caller can never observe a half-registered backup.
    """
    result = RegistrationResult(success=False)
    result.attempts = 0
    while True:
        result.attempts += 1
        if trace is None:
            status = _walk_once(state, policy, packet, injector, result)
        else:
            with trace.span(
                "signal.attempt", category="signaling",
                attempt=result.attempts,
            ) as span:
                status = _walk_once(
                    state, policy, packet, injector, result
                )
                span.tag(outcome=status)
        if status != _FAULTED:
            return result
        unwind_backup_path(state, policy, packet, trace=trace)
        if retry_policy is None or retry_policy.gives_up(
            result.attempts, result.delay
        ):
            result.gave_up = True
            return result
        result.delay += retry_policy.backoff(result.attempts, injector.retry_rng)


#: Internal walk statuses.
_OK = "ok"
_REJECTED = "rejected"
_FAULTED = "faulted"


def _walk_once(
    state: NetworkState,
    policy: SparePolicy,
    packet: BackupRegisterPacket,
    injector,
    result: RegistrationResult,
) -> str:
    """One lossy walk attempt; mutates ``result`` fault accounting."""
    route = packet.backup_route.link_ids
    crash_at = injector.crash_hop(len(route))
    result.resizes = []
    result.success = False
    for hop, link_id in enumerate(route):
        event, delay = injector.sample_hop()
        result.delay += delay
        result.hops_signaled += 1
        if event == "drop":
            result.drops += 1
            return _FAULTED
        if event == "duplicate":
            # Second delivery of the same packet: one more message on
            # the wire; the registration below absorbs it idempotently.
            result.duplicates += 1
            result.hops_signaled += 1
        ledger = state.ledger(link_id)
        if not ledger.has_backup(packet.registration_key):
            if ledger.backup_headroom() + BW_EPSILON < packet.bw_req:
                unwind_backup_path(state, policy, packet)
                result.rejected_link = link_id
                result.resizes = []
                return _REJECTED
            ledger.register_backup(
                packet.registration_key, packet.primary_lset, packet.bw_req
            )
        result.resizes.append(policy.resize(ledger))
        if crash_at == hop:
            result.crashes += 1
            return _FAULTED
    result.success = True
    return _OK


def release_backup_path(
    state: NetworkState,
    policy: SparePolicy,
    packet: BackupReleasePacket,
    trace=None,
) -> List[ResizeOutcome]:
    """Walk a release packet along the backup route, shrinking spare
    pools as registrations disappear."""
    if trace is not None:
        with trace.span(
            "signal.release", category="signaling",
            connection=packet.connection_id,
            backup_index=packet.backup_index,
            hops=len(packet.backup_route.link_ids),
        ):
            return release_backup_path(state, policy, packet)
    batched = batch_release_walk(
        state, policy, packet.registration_key, packet.backup_route.link_ids
    )
    if batched is not None:
        return batched
    outcomes = []
    for link_id in packet.backup_route.link_ids:
        ledger = state.ledger(link_id)
        ledger.release_backup(packet.registration_key)
        outcomes.append(policy.resize(ledger))
    return outcomes


def unwind_backup_path(
    state: NetworkState,
    policy: SparePolicy,
    packet: BackupRegisterPacket,
    trace=None,
) -> int:
    """Source-initiated idempotent unwind of a (possibly partial) walk.

    After a drop or router crash the source does not know how far its
    register packet got, so the recovery release must be safe against
    every prefix: it walks the whole route and releases only the links
    that actually hold this packet's registration.  Calling it twice —
    or against a route that never registered anywhere — is a no-op,
    which is what makes crashed walks safely retryable.

    Returns the number of registrations released.
    """
    if trace is not None:
        with trace.span(
            "signal.unwind", category="signaling",
            connection=packet.connection_id,
            backup_index=packet.backup_index,
        ) as span:
            released = unwind_backup_path(state, policy, packet)
            span.tag(released=released)
            return released
    released = 0
    for link_id in packet.backup_route.link_ids:
        ledger = state.ledger(link_id)
        if ledger.has_backup(packet.registration_key):
            ledger.release_backup(packet.registration_key)
            policy.resize(ledger)
            released += 1
    return released


def _unwind(
    state: NetworkState,
    policy: SparePolicy,
    registration_key,
    registered: List[int],
) -> None:
    """Model the upstream release packet: undo registrations in
    reverse hop order, resizing each spare pool back down."""
    for link_id in reversed(registered):
        ledger = state.ledger(link_id)
        ledger.release_backup(registration_key)
        policy.resize(ledger)
