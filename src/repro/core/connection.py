"""DR-connections and connection requests."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..topology.graph import Route
from .channel import Channel, ChannelRole
from .errors import ConnectionStateError


@dataclass(frozen=True)
class ConnectionRequest:
    """A client's request for a DR-connection.

    The paper's model (Section 6.1): requests arrive as a Poisson
    process, each needs a constant bandwidth ``bw_req`` and lives for
    ``holding_time`` (uniform between 20 and 60 minutes) unless the
    network rejects it.
    """

    request_id: int
    source: int
    destination: int
    bw_req: float
    arrival_time: float = 0.0
    holding_time: float = float("inf")

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError("source and destination must differ")
        if self.bw_req <= 0:
            raise ValueError("bw_req must be positive")
        if self.holding_time <= 0:
            raise ValueError("holding_time must be positive")

    @property
    def departure_time(self) -> float:
        return self.arrival_time + self.holding_time


class ConnectionState(enum.Enum):
    """Lifecycle of a DR-connection (see the per-member comments)."""

    ACTIVE = "active"          # primary carrying traffic, backup armed
    UNPROTECTED = "active-unprotected"  # primary up, no (usable) backup
    RECOVERING = "recovering"  # primary failed, switching to backup
    FAILED = "failed"          # primary failed and no backup activated
    TERMINATED = "terminated"  # released normally


@dataclass
class DRConnection:
    """An admitted dependable real-time connection.

    Section 2: "Each dependable real-time (DR-) connection consists of
    one primary and **one or more** backup channels."  ``backup`` is
    the first-choice backup; ``extra_backups`` holds any further ones
    in activation-preference order (recovery tries ``backup`` first,
    then each extra in turn).

    ``established_seq`` is the admission order; failure recovery
    resolves spare-pool contention in this order (first established,
    first activated), a deterministic stand-in for the paper's
    near-simultaneous activation races.
    """

    connection_id: int
    request: ConnectionRequest
    primary: Channel
    backup: Optional[Channel] = None
    extra_backups: List["Channel"] = field(default_factory=list)
    established_seq: int = 0
    state: ConnectionState = ConnectionState.ACTIVE

    def __post_init__(self) -> None:
        if self.primary.role is not ChannelRole.PRIMARY:
            raise ConnectionStateError("primary channel must have PRIMARY role")
        for channel in self.all_backups:
            if channel.role is not ChannelRole.BACKUP:
                raise ConnectionStateError("backup channel must have BACKUP role")
        if self.backup is None and self.extra_backups:
            raise ConnectionStateError(
                "extra backups require a first backup channel"
            )
        if self.backup is None and self.state is ConnectionState.ACTIVE:
            self.state = ConnectionState.UNPROTECTED

    @property
    def all_backups(self) -> List[Channel]:
        """Every standing backup channel, activation-preference first."""
        channels = []
        if self.backup is not None:
            channels.append(self.backup)
        channels.extend(self.extra_backups)
        return channels

    @property
    def backup_count(self) -> int:
        return len(self.all_backups)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def source(self) -> int:
        return self.request.source

    @property
    def destination(self) -> int:
        return self.request.destination

    @property
    def bw_req(self) -> float:
        return self.request.bw_req

    @property
    def primary_route(self) -> Route:
        return self.primary.route

    @property
    def backup_route(self) -> Optional[Route]:
        return self.backup.route if self.backup is not None else None

    @property
    def has_backup(self) -> bool:
        return self.backup is not None

    @property
    def is_active(self) -> bool:
        return self.state in (ConnectionState.ACTIVE, ConnectionState.UNPROTECTED)

    def backup_overlap_with_primary(self) -> int:
        """Links the backup shares with the primary — requirement (2)
        of Section 2's ideal-backup criteria; each shared link is a
        single point of failure."""
        if self.backup is None:
            return 0
        return len(self.primary.route.shared_links(self.backup.route))

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def mark_recovering(self) -> None:
        if not self.is_active:
            raise ConnectionStateError(
                "cannot start recovery from state {}".format(self.state)
            )
        self.primary.mark_failed()
        self.state = ConnectionState.RECOVERING

    def select_backup(self, index: int) -> None:
        """Move the index-th standing backup into first position (used
        by recovery when an earlier-preference backup cannot be
        activated but a later one can)."""
        channels = self.all_backups
        if not 0 <= index < len(channels):
            raise ConnectionStateError(
                "no backup at index {} (have {})".format(index, len(channels))
            )
        if index == 0:
            return
        chosen = channels.pop(index)
        self.backup = chosen
        self.extra_backups = channels

    def promote_backup(self) -> Channel:
        """Switch to the first backup channel (step 3 of DRTP).  The
        backup becomes the new primary; any remaining backups were
        routed against the *old* primary and are the caller's
        responsibility to release and re-plan (resource
        reconfiguration)."""
        if self.state is not ConnectionState.RECOVERING:
            raise ConnectionStateError("promote_backup requires RECOVERING state")
        if self.backup is None:
            raise ConnectionStateError("no backup channel to promote")
        backup = self.backup
        backup.activate()
        self.primary = backup
        self.backup = None
        self.state = ConnectionState.UNPROTECTED
        return backup

    def mark_failed(self) -> None:
        self.state = ConnectionState.FAILED

    def terminate(self) -> None:
        if self.state is ConnectionState.TERMINATED:
            raise ConnectionStateError("connection already terminated")
        self.primary.release()
        for channel in self.all_backups:
            channel.release()
        self.state = ConnectionState.TERMINATED
