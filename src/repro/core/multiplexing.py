"""Backup multiplexing — spare-resource sizing policies (Section 5).

The DR-connection manager of each link decides how much bandwidth to
hold as *spare* for the backups registered there:

* :class:`SharedSparePolicy` is the paper's rule.  All DR-connections
  requiring identical bandwidth, ``SC_i`` (the number of backups the
  spare can activate at once) must cover the worst single-link
  failure: "if any element of ``APLV_i`` is larger than ``SC_i``, at
  least two conflicting backups are multiplexed on the same spare
  resources ... it is necessary to reserve more spare resources."
  Generalized to per-connection bandwidths, the target is the ledger's
  ``max_demand`` — the largest total backup bandwidth any one link
  failure could activate here.

* :class:`DedicatedSparePolicy` is the strawman DRTP rejects: every
  backup gets its own full reservation ("equipping each DR-connection
  even with a single backup disjoint from its primary reduces the
  network capacity by at least 50%").  Used by the overhead baseline
  benchmark.

When a link cannot grow spare to the target ("due to the shortage of
resources"), the paper picks option (2): multiplex the new backup on
the existing spare with the backups it conflicts with, accepting the
fault-tolerance degradation.  :meth:`SparePolicy.resize` therefore
clamps the target to what fits and reports the deficit; released
primary bandwidth is fed back to deficient spare pools on the next
resize, matching Section 5's replenishment remark.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..network.state import BW_EPSILON, LinkLedger


@dataclass(frozen=True)
class ResizeOutcome:
    """What a spare resize did on one link."""

    link_id: int
    target: float
    achieved: float

    @property
    def deficit(self) -> float:
        """Spare bandwidth the link *should* hold but could not fit —
        a positive deficit means conflicting backups are multiplexed
        over the same spare resources."""
        return max(0.0, self.target - self.achieved)

    @property
    def fully_provisioned(self) -> bool:
        return self.deficit <= BW_EPSILON


class SparePolicy(abc.ABC):
    """Decides each link's spare-bandwidth target."""

    name: str = "abstract"

    @abc.abstractmethod
    def target(self, ledger: LinkLedger) -> float:
        """Spare bandwidth this link ought to reserve."""

    def resize(self, ledger: LinkLedger) -> ResizeOutcome:
        """Move the link's spare toward the target.

        Growth is bounded by the link's unallocated bandwidth; shrink
        always succeeds.  Call after every mutation of the link's
        backup registry or primary reservations.
        """
        target = self.target(ledger)
        ceiling = ledger.capacity - ledger.prime_bw
        achieved = min(target, max(0.0, ceiling))
        ledger.set_spare(achieved)
        return ResizeOutcome(
            link_id=ledger.link_id, target=target, achieved=achieved
        )


class SharedSparePolicy(SparePolicy):
    """The paper's multiplexed sizing: cover the worst single failure."""

    name = "shared"

    def target(self, ledger: LinkLedger) -> float:
        return ledger.max_demand


class GroupAwareSparePolicy(SparePolicy):
    """SRLG sizing: cover the worst *risk-group* failure.

    The paper's ``SC_i ≥ max_j a_{i,j}`` rule assumes exactly one link
    fails at a time; a conduit cut activates every backup whose primary
    touches the group, so the spare target becomes the ledger's
    ``max_group_demand`` — the largest total backup bandwidth any one
    group failure could activate here.  Without an installed SRLG
    assignment (or with singleton groups) this degrades to exactly the
    shared policy.
    """

    name = "group-shared"

    def target(self, ledger: LinkLedger) -> float:
        return ledger.max_group_demand


class DedicatedSparePolicy(SparePolicy):
    """No multiplexing: one full reservation per registered backup."""

    name = "dedicated"

    def target(self, ledger: LinkLedger) -> float:
        return ledger.total_backup_bw


class NoSparePolicy(SparePolicy):
    """Reserve nothing (reactive-recovery baseline: backups exist on
    paper but own no resources; activation rides on whatever bandwidth
    is free when the failure strikes)."""

    name = "none"

    def target(self, ledger: LinkLedger) -> float:
        return 0.0
