"""Exception hierarchy for the DRTP core."""

from __future__ import annotations


class DRTPError(Exception):
    """Base class for all DRTP-level failures."""


class AdmissionError(DRTPError):
    """A connection request could not be admitted."""


class SignalingError(DRTPError):
    """A register/release packet was rejected or malformed."""


class RecoveryError(DRTPError):
    """A failure-recovery operation could not be carried out."""


class ConnectionStateError(DRTPError):
    """An operation was attempted in an invalid connection state."""


class SimulationError(DRTPError):
    """A simulation run was driven incorrectly (e.g. events scheduled
    in the past)."""


class FaultInjectionError(SimulationError):
    """A fault plan or injector is malformed, or an injected fault left
    the system in a state it promised it would not."""
