"""Slab-allocated connection storage.

A long-horizon soak churns through millions of admissions while only
thousands are concurrently active.  A plain ``dict[int, DRConnection]``
already frees the *objects* on release, but its internal table keeps
growing amortization slack, and — more importantly for the cluster and
kernel layers — there is no stable small-integer identity for a live
connection that array-oriented bookkeeping could index by.

:class:`SlabConnectionStore` provides both: connections live in an
integer-indexed slot array whose freed slots are reused LIFO, and an
insertion-ordered ``id -> slot`` index preserves the *exact* iteration
order of the dict it replaces.  That ordering is load-bearing: recovery
(`reconfigure_unprotected`, the broken-backup sweep in
``apply_failed_links``) iterates ``connections.values()`` and plans in
that order, so the store must be a drop-in for a dict or the golden
traces, the differential oracle, and the cluster decision-trace
invariant would all shift.

Safety property (hypothesis-tested in ``tests/test_slab_store.py``):
slot reuse never aliases a live connection — a slot is only handed out
after its previous occupant was removed from the index, and every live
id maps to exactly one slot holding exactly that connection.

The store is one of the engine's batch-oriented layers alongside the
compiled cost arrays (:mod:`repro.kernels.arrays`) and the batched
signaling apply (:mod:`repro.kernels.apply`); ``docs/performance.md``
places each in the speedup ledger.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .connection import DRConnection

_MISSING = object()


class SlabConnectionStore:
    """Dict-compatible connection table backed by reusable slots.

    Supports the exact mapping subset the service and recovery layers
    use — ``store[id]``, ``store[id] = conn``, ``del store[id]``,
    ``pop``, ``get``, ``in``, ``len``, ``values()``, ``items()``,
    ``keys()`` — with dict-identical (insertion) iteration order.
    """

    __slots__ = ("_slots", "_free", "_slot_of", "reused_slots", "high_water")

    def __init__(self) -> None:
        #: Slot array; freed slots hold ``None`` until reused.
        self._slots: List[Optional[DRConnection]] = []
        #: LIFO free list of slot indices (hot reuse keeps slabs dense).
        self._free: List[int] = []
        #: Insertion-ordered live index: connection id -> slot.
        self._slot_of: Dict[int, int] = {}
        #: How many insertions were served from the free list.
        self.reused_slots = 0
        #: Peak live population — the slab's actual footprint bound.
        self.high_water = 0

    # ------------------------------------------------------------------
    # Mapping interface (the subset service/recovery actually use)
    # ------------------------------------------------------------------
    def __setitem__(self, connection_id: int, connection: DRConnection) -> None:
        if connection.connection_id != connection_id:
            raise ValueError(
                "store key {} does not match connection id {}".format(
                    connection_id, connection.connection_id
                )
            )
        slot = self._slot_of.get(connection_id)
        if slot is not None:
            # Dict semantics: replacing keeps the original order.
            self._slots[slot] = connection
            return
        if self._free:
            slot = self._free.pop()
            self.reused_slots += 1
            self._slots[slot] = connection
        else:
            slot = len(self._slots)
            self._slots.append(connection)
        self._slot_of[connection_id] = slot
        if len(self._slot_of) > self.high_water:
            self.high_water = len(self._slot_of)

    def __getitem__(self, connection_id: int) -> DRConnection:
        slot = self._slot_of.get(connection_id)
        if slot is None:
            raise KeyError(connection_id)
        return self._slots[slot]  # type: ignore[return-value]

    def __delitem__(self, connection_id: int) -> None:
        slot = self._slot_of.pop(connection_id, None)
        if slot is None:
            raise KeyError(connection_id)
        self._slots[slot] = None
        self._free.append(slot)

    def __contains__(self, connection_id: object) -> bool:
        return connection_id in self._slot_of

    def __len__(self) -> int:
        return len(self._slot_of)

    def __iter__(self) -> Iterator[int]:
        return iter(self._slot_of)

    def get(
        self, connection_id: int, default: Optional[DRConnection] = None
    ) -> Optional[DRConnection]:
        """Live connection for ``connection_id``, else ``default``."""
        slot = self._slot_of.get(connection_id)
        if slot is None:
            return default
        return self._slots[slot]

    def pop(self, connection_id: int, default=_MISSING) -> DRConnection:
        """Remove and return a connection (KeyError without default)."""
        slot = self._slot_of.pop(connection_id, None)
        if slot is None:
            if default is _MISSING:
                raise KeyError(connection_id)
            return default
        connection = self._slots[slot]
        self._slots[slot] = None
        self._free.append(slot)
        return connection  # type: ignore[return-value]

    def keys(self) -> Iterator[int]:
        """Live connection ids in insertion order."""
        return iter(self._slot_of)

    def values(self) -> Iterator[DRConnection]:
        """Live connections in insertion order (dict-identical)."""
        for slot in self._slot_of.values():
            yield self._slots[slot]  # type: ignore[misc]

    def items(self) -> Iterator[Tuple[int, DRConnection]]:
        """``(id, connection)`` pairs in insertion order."""
        for connection_id, slot in self._slot_of.items():
            yield connection_id, self._slots[slot]  # type: ignore[misc]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        """Slots ever allocated (live + free) — bounded by the peak
        concurrent population, *not* by total admissions."""
        return len(self._slots)

    @property
    def free_count(self) -> int:
        """Slots currently on the free list."""
        return len(self._free)

    def stats(self) -> Dict[str, int]:
        """Reuse/footprint counters for soak reports and benchmarks."""
        return {
            "live": len(self._slot_of),
            "slots_allocated": len(self._slots),
            "free": len(self._free),
            "reused_slots": self.reused_slots,
            "high_water": self.high_water,
        }

    def check(self) -> None:
        """Internal invariants: the live index and the slot array are a
        bijection, free slots are empty, and no slot is both live and
        free — the no-aliasing property the hypothesis suite drives."""
        free = set(self._free)
        if len(free) != len(self._free):
            raise AssertionError("free list holds duplicate slots")
        seen_slots = set()
        for connection_id, slot in self._slot_of.items():
            if slot in free:
                raise AssertionError(
                    "slot {} is both live and free".format(slot)
                )
            if slot in seen_slots:
                raise AssertionError(
                    "slot {} aliased by two live connections".format(slot)
                )
            seen_slots.add(slot)
            connection = self._slots[slot]
            if connection is None or connection.connection_id != connection_id:
                raise AssertionError(
                    "slot {} does not hold connection {}".format(
                        slot, connection_id
                    )
                )
        for slot, connection in enumerate(self._slots):
            if connection is None:
                if slot not in free:
                    raise AssertionError(
                        "empty slot {} is not on the free list".format(slot)
                    )
            elif slot not in seen_slots:
                raise AssertionError(
                    "slot {} holds an unindexed connection".format(slot)
                )
