"""Failure recovery — detection, backup activation, reconfiguration.

DRTP's steps (2)–(4): after a network component fails, every affected
DR-connection tries to *activate* its backup, which succeeds only if
the spare resources reserved on every backup link can still cover it.
Conflicting backups multiplexed over the same spare may lose this race
— that is precisely the fault-tolerance loss the routing schemes try
to minimize.

Two entry points:

* :func:`assess_link_failure` — *pure*: computes which activations
  would succeed for a hypothetical single-link failure, without
  touching any state.  The paper's ``P_act-bk`` metric aggregates this
  over every link and many steady-state snapshots.

* :func:`apply_link_failure` — *mutating*: actually switches the
  survivors to their backups (backup bandwidth becomes primary
  bandwidth), tears down casualties, drops backups broken by the
  failure, and optionally re-establishes backups for connections left
  unprotected (DRTP step 4, resource reconfiguration).

Contention order: affected connections activate in establishment
order (``established_seq``), a deterministic stand-in for the paper's
near-simultaneous races; each success consumes spare tokens that later
activations can no longer use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

from ..network.state import BW_EPSILON, NetworkState
from .connection import ConnectionState, DRConnection
from .errors import RecoveryError
from .multiplexing import SparePolicy

#: Activation-outcome reason strings.
ACTIVATED = "activated"
NO_BACKUP = "no-backup"
BACKUP_CROSSES_FAILURE = "backup-crosses-failed-link"
SPARE_EXHAUSTED = "spare-exhausted"
ENDPOINT_FAILED = "endpoint-failed"


@dataclass(frozen=True)
class ActivationOutcome:
    """One affected connection's recovery attempt.

    ``backup_index`` is the position (within the connection's
    activation-preference order) of the backup that activated, or -1
    when none did — with multiple backups per connection (Section 2's
    "one or more"), recovery falls through to the next backup when an
    earlier one is broken or starved.
    """

    connection_id: int
    success: bool
    reason: str
    backup_index: int = -1


@dataclass
class FailureImpact:
    """Everything one failure event would do to the DR-state.

    ``link_id`` labels single-link failures (negative encodes a node
    failure); ``group_id`` is set instead when the event was a whole
    shared-risk group going down at once.
    """

    link_id: int
    outcomes: List[ActivationOutcome] = field(default_factory=list)
    group_id: Optional[int] = None

    @property
    def affected(self) -> int:
        return len(self.outcomes)

    @property
    def activated(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.success)

    @property
    def failed(self) -> int:
        return self.affected - self.activated

    def reasons(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for outcome in self.outcomes:
            histogram[outcome.reason] = histogram.get(outcome.reason, 0) + 1
        return histogram


def assess_link_failure(
    state: NetworkState,
    connections: Iterable[DRConnection],
    link_id: int,
    use_free_bandwidth: bool = False,
) -> FailureImpact:
    """Judge every affected connection's activation, without mutation.

    Args:
        state: Authoritative ledgers (read-only here).
        connections: The candidate population; only *active*
            connections whose primary crosses ``link_id`` are affected.
        link_id: The failed unidirectional link.
        use_free_bandwidth: When True, activations may also draw on
            unallocated link bandwidth (an ablation; the paper's
            ``SC_i`` counts reserved spare only).
    """
    return assess_failed_links(
        state,
        connections,
        frozenset({link_id}),
        label_link=link_id,
        use_free_bandwidth=use_free_bandwidth,
    )


def assess_node_failure(
    state: NetworkState,
    connections: Iterable[DRConnection],
    node: int,
    network,
    use_free_bandwidth: bool = False,
    count_endpoint_losses: bool = False,
) -> FailureImpact:
    """A switch failure kills every link touching the node (Section 1
    lists "breakdown of network components (links and switches)").

    Connections *terminating at* the dead node are unrecoverable by
    any routing (their endpoint is gone); they are excluded from the
    impact unless ``count_endpoint_losses`` is set, in which case they
    appear with reason :data:`ENDPOINT_FAILED` — keeping the
    fault-tolerance metric about routing quality, not topology luck.
    """
    failed = frozenset(
        link.link_id
        for link in network.out_links(node) + network.in_links(node)
    )
    impact = assess_failed_links(
        state,
        connections,
        failed,
        label_link=-node - 1,  # negative label marks a node failure
        use_free_bandwidth=use_free_bandwidth,
        skip_endpoint=node,
    )
    if count_endpoint_losses:
        for conn in connections:
            if conn.is_active and node in (conn.source, conn.destination):
                impact.outcomes.append(
                    ActivationOutcome(
                        conn.connection_id, False, ENDPOINT_FAILED
                    )
                )
    return impact


def assess_group_failure(
    state: NetworkState,
    connections: Iterable[DRConnection],
    group_id: int,
    risk_groups,
    use_free_bandwidth: bool = False,
) -> FailureImpact:
    """Pure SRLG assessment: every link of one shared-risk group fails
    simultaneously and the affected connections race for activation.

    The aggregate success ratio over groups and snapshots is the
    generalized survivability metric ``P_act-bk^(g)``; with singleton
    groups it reduces exactly to :func:`assess_link_failure` and the
    paper's ``P_act-bk``.
    """
    members = risk_groups.members(group_id)
    impact = assess_failed_links(
        state,
        connections,
        frozenset(members),
        label_link=min(members) if len(members) == 1 else -1,
        use_free_bandwidth=use_free_bandwidth,
    )
    impact.group_id = group_id
    return impact


def apply_group_failure(
    state: NetworkState,
    policy: SparePolicy,
    connections: Dict[int, DRConnection],
    group_id: int,
    risk_groups,
) -> FailureImpact:
    """Mutating SRLG recovery: the whole group dies at once and the
    activation race of :func:`apply_failed_links` runs over the union
    — one simultaneous multi-link failure, not a sequence of
    single-link recoveries."""
    members = risk_groups.members(group_id)
    impact = apply_failed_links(
        state,
        policy,
        connections,
        frozenset(members),
        label_link=min(members) if len(members) == 1 else -1,
    )
    impact.group_id = group_id
    return impact


def assess_failed_links(
    state: NetworkState,
    connections: Iterable[DRConnection],
    failed_links: FrozenSet[int],
    label_link: int = -1,
    use_free_bandwidth: bool = False,
    skip_endpoint: Optional[int] = None,
) -> FailureImpact:
    """Core activation-contention assessment for a set of dead links.

    Affected connections (active, primary crossing any failed link,
    endpoints alive) attempt activation in establishment order; a
    backup activates iff its route avoids *every* failed link and all
    its links retain enough residual spare.
    """
    impact = FailureImpact(link_id=label_link)
    affected = sorted(
        (
            conn
            for conn in connections
            if conn.is_active
            and not (
                skip_endpoint is not None
                and skip_endpoint in (conn.source, conn.destination)
            )
            and (conn.primary_route.lset & failed_links)
        ),
        key=lambda conn: conn.established_seq,
    )
    if not affected:
        return impact

    # Residual activation bandwidth per backup link, consumed in order.
    residual: Dict[int, float] = {}

    def budget(backup_link: int) -> float:
        if backup_link not in residual:
            ledger = state.ledger(backup_link)
            pool = ledger.spare_bw
            if use_free_bandwidth:
                pool += ledger.free_bw
            residual[backup_link] = pool
        return residual[backup_link]

    for conn in affected:
        channels = conn.all_backups
        if not channels:
            impact.outcomes.append(
                ActivationOutcome(conn.connection_id, False, NO_BACKUP)
            )
            continue
        # Try each backup in preference order; the first whose route
        # avoids the failure and whose links still hold spare wins.
        activated_index = -1
        saw_survivor = False
        for index, channel in enumerate(channels):
            backup = channel.route
            if backup.lset & failed_links:
                continue
            saw_survivor = True
            if all(
                budget(b) + BW_EPSILON >= conn.bw_req
                for b in backup.link_ids
            ):
                for b in backup.link_ids:
                    residual[b] -= conn.bw_req
                activated_index = index
                break
        if activated_index >= 0:
            impact.outcomes.append(
                ActivationOutcome(
                    conn.connection_id, True, ACTIVATED, activated_index
                )
            )
        elif saw_survivor:
            impact.outcomes.append(
                ActivationOutcome(conn.connection_id, False, SPARE_EXHAUSTED)
            )
        else:
            impact.outcomes.append(
                ActivationOutcome(
                    conn.connection_id, False, BACKUP_CROSSES_FAILURE
                )
            )
    return impact


def apply_link_failure(
    state: NetworkState,
    policy: SparePolicy,
    connections: Dict[int, DRConnection],
    link_id: int,
) -> FailureImpact:
    """Mutating recovery: switch survivors to their backups.

    The assessment (same contention semantics as
    :func:`assess_link_failure`) decides who wins; the state mutation
    then:

    * releases every affected primary's reservations (the failed link's
      ledger keeps honest books even though the link is dead);
    * for winners, converts their backup registration into a primary
      reservation hop by hop, drawing first on free bandwidth and then
      on the spare pool the backup was multiplexed on;
    * for losers, tears the whole connection down;
    * drops (releases) backups of *unaffected* connections that crossed
      the failed link — their primaries still run, but they are now
      unprotected until reconfiguration gives them a new backup.

    Returns the same :class:`FailureImpact` the assessment produced.
    """
    return apply_failed_links(
        state, policy, connections, frozenset({link_id}), label_link=link_id
    )


def apply_node_failure(
    state: NetworkState,
    policy: SparePolicy,
    connections: Dict[int, DRConnection],
    node: int,
    network,
) -> FailureImpact:
    """Mutating switch outage: every link touching ``node`` dies.

    Connections terminating at the dead switch are unrecoverable by
    any routing; they are torn down (their resources elsewhere return
    to the pool) and reported with :data:`ENDPOINT_FAILED` appended to
    the transit-impact outcomes.
    """
    failed = frozenset(
        link.link_id
        for link in network.out_links(node) + network.in_links(node)
    )
    # Endpoint casualties first: release everything they hold.
    endpoint_outcomes = []
    for conn in list(connections.values()):
        if not conn.is_active:
            continue
        if node in (conn.source, conn.destination):
            _release_route_primary(state, policy, conn)
            for channel in list(conn.all_backups):
                _drop_channel(state, policy, conn, channel)
            conn.mark_failed()
            del connections[conn.connection_id]
            endpoint_outcomes.append(
                ActivationOutcome(conn.connection_id, False, ENDPOINT_FAILED)
            )
    impact = apply_failed_links(
        state,
        policy,
        connections,
        failed,
        label_link=-node - 1,
    )
    impact.outcomes.extend(endpoint_outcomes)
    return impact


def apply_failed_links(
    state: NetworkState,
    policy: SparePolicy,
    connections: Dict[int, DRConnection],
    failed_links: FrozenSet[int],
    label_link: int = -1,
) -> FailureImpact:
    """Core mutating recovery for a set of simultaneously dead links."""
    impact = assess_failed_links(
        state, connections.values(), failed_links, label_link=label_link
    )
    outcome_by_id = {o.connection_id: o for o in impact.outcomes}

    # Backups broken by the failure on connections whose primary is
    # intact: release those registrations (the routes are unusable).
    for conn in list(connections.values()):
        if conn.connection_id in outcome_by_id or not conn.is_active:
            continue
        for channel in list(conn.all_backups):
            if channel.route.lset & failed_links:
                _drop_channel(state, policy, conn, channel)

    for conn_id, outcome in outcome_by_id.items():
        conn = connections[conn_id]
        conn.mark_recovering()
        _release_route_primary(state, policy, conn)
        if outcome.success:
            # Bring the winning backup to the front, then promote it;
            # the rest were routed against the dead primary and are
            # released (reconfiguration re-plans them).
            conn.select_backup(outcome.backup_index)
            for channel in list(conn.extra_backups):
                _drop_channel(state, policy, conn, channel)
            _promote(state, policy, conn)
        else:
            for channel in list(conn.all_backups):
                _drop_channel(state, policy, conn, channel)
            conn.mark_failed()
            del connections[conn_id]
    return impact


def reconfigure_unprotected(
    state: NetworkState,
    policy: SparePolicy,
    connections: Dict[int, DRConnection],
    scheme,
) -> int:
    """DRTP step 4: find new backups for unprotected connections.

    ``scheme`` is any bound :class:`~repro.routing.base.RoutingScheme`;
    its backup-selection machinery is reused by planning against the
    existing primary.  Returns how many connections were re-protected.
    """
    from .signaling import BackupRegisterPacket, register_backup_path
    from ..routing.base import RouteQuery
    from .channel import Channel, ChannelRole

    restored = 0
    for conn in connections.values():
        if conn.backup is not None or not conn.is_active:
            continue
        backup = scheme.plan_backup(
            RouteQuery(conn.source, conn.destination, conn.bw_req),
            conn.primary_route,
        )
        if backup is None or backup.lset == conn.primary_route.lset:
            continue
        packet = BackupRegisterPacket(
            connection_id=conn.connection_id,
            backup_route=backup,
            primary_lset=conn.primary_route.lset,
            bw_req=conn.bw_req,
        )
        if register_backup_path(state, policy, packet).success:
            conn.backup = Channel(
                role=ChannelRole.BACKUP, route=backup, registration_index=0
            )
            conn.state = ConnectionState.ACTIVE
            restored += 1
    return restored


# ----------------------------------------------------------------------
# Mutation helpers
# ----------------------------------------------------------------------
def _release_route_primary(
    state: NetworkState, policy: SparePolicy, conn: DRConnection
) -> None:
    for b in conn.primary_route.link_ids:
        ledger = state.ledger(b)
        ledger.release_primary(conn.bw_req)
        policy.resize(ledger)


def _drop_channel(
    state: NetworkState,
    policy: SparePolicy,
    conn: DRConnection,
    channel,
) -> None:
    """Release one backup channel's registrations and detach it."""
    key = channel.registration_key(conn.connection_id)
    for b in channel.route.link_ids:
        ledger = state.ledger(b)
        ledger.release_backup(key)
        policy.resize(ledger)
    channel.release()
    if conn.backup is channel:
        conn.backup = (
            conn.extra_backups.pop(0) if conn.extra_backups else None
        )
    else:
        conn.extra_backups.remove(channel)
    if conn.backup is None and conn.state is ConnectionState.ACTIVE:
        conn.state = ConnectionState.UNPROTECTED


def _promote(
    state: NetworkState, policy: SparePolicy, conn: DRConnection
) -> None:
    """Turn the first backup's registration into a primary reservation."""
    channel = conn.backup
    assert channel is not None
    key = channel.registration_key(conn.connection_id)
    for b in channel.route.link_ids:
        ledger = state.ledger(b)
        ledger.release_backup(key)
        # Claim the connection's bandwidth: free first, spare covers
        # the shortfall (that is what the spare was reserved for).
        shortfall = conn.bw_req - ledger.free_bw
        if shortfall > BW_EPSILON:
            if ledger.spare_bw + BW_EPSILON < shortfall:
                raise RecoveryError(
                    "link {}: assessment promised spare that is missing".format(b)
                )
            ledger.set_spare(ledger.spare_bw - shortfall)
        ledger.reserve_primary(conn.bw_req)
        policy.resize(ledger)
    conn.promote_backup()
