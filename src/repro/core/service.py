"""DRTPService — the public facade of the library.

One service instance manages the DR-connections of one network under
one routing scheme and one spare-multiplexing policy::

    from repro import DRTPService, DLSRScheme, waxman_network

    net = waxman_network(60, capacity=30.0)
    service = DRTPService(net, DLSRScheme())
    decision = service.request(source=3, destination=41, bw_req=1.0)
    impact = service.assess_link_failure(some_link_id)
    service.release(decision.connection.connection_id)

The service is what the discrete-event simulator drives and what the
examples exercise; it is deliberately synchronous and deterministic so
that replaying one scenario file under different schemes (the paper's
comparison methodology) is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..network.database import LinkStateDatabase
from ..network.state import NetworkState
from ..routing.base import RouteQuery, RoutingContext, RoutingScheme
from ..topology.graph import Network
from .admission import AdmissionController, AdmissionDecision
from .connection import ConnectionRequest, DRConnection
from .errors import ConnectionStateError
from .multiplexing import SharedSparePolicy, SparePolicy
from .recovery import (
    FailureImpact,
    apply_link_failure,
    apply_node_failure,
    assess_link_failure,
    assess_node_failure,
    reconfigure_unprotected,
)


@dataclass
class ServiceCounters:
    """Cumulative service-level statistics."""

    requests: int = 0
    accepted: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    released: int = 0
    control_messages: int = 0
    backup_overlap_links: int = 0
    backups_with_overlap: int = 0
    primary_hops_total: int = 0
    backup_hops_total: int = 0

    @property
    def acceptance_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.accepted / self.requests

    def record_rejection(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1


class DRTPService:
    """Admission, teardown and recovery for DR-connections."""

    def __init__(
        self,
        network: Network,
        scheme: RoutingScheme,
        spare_policy: Optional[SparePolicy] = None,
        require_backup: bool = True,
        database: Optional[LinkStateDatabase] = None,
        live_database: bool = True,
        qos_slack: Optional[int] = None,
    ) -> None:
        """``live_database=False`` routes from periodically-refreshed
        snapshots instead of instantly-converged link state — the
        staleness regime real link-state protocols live in.  Call
        :meth:`refresh_database` (or let the simulator schedule it) to
        re-flood; admission rolls back cleanly when stale information
        leads routing astray.

        ``qos_slack`` models a delay QoS: every connection's routes
        (primary and backups) are bounded to ``min_hop_distance +
        qos_slack`` hops.  ``None`` (the paper's evaluation setting)
        leaves route lengths unbounded."""
        self.network = network
        self.state = NetworkState(network)
        if database is not None:
            self.database = database
        else:
            self.database = LinkStateDatabase(self.state, live=live_database)
        self.scheme = scheme
        scheme.bind(RoutingContext(network, self.state, self.database))
        self.spare_policy = spare_policy or SharedSparePolicy()
        if qos_slack is not None and qos_slack < 0:
            raise ValueError("qos_slack must be >= 0 when given")
        self.qos_slack = qos_slack
        self._admission = AdmissionController(
            self.state, self.spare_policy, require_backup=require_backup
        )
        self._connections: Dict[int, DRConnection] = {}
        self._next_request_id = 0
        self.counters = ServiceCounters()

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def request(
        self,
        source: int,
        destination: int,
        bw_req: float,
        arrival_time: float = 0.0,
        holding_time: float = float("inf"),
        request_id: Optional[int] = None,
    ) -> AdmissionDecision:
        """Ask for a DR-connection; routes, reserves and registers."""
        if request_id is None:
            request_id = self._next_request_id
        self._next_request_id = max(self._next_request_id, request_id) + 1
        req = ConnectionRequest(
            request_id=request_id,
            source=source,
            destination=destination,
            bw_req=bw_req,
            arrival_time=arrival_time,
            holding_time=holding_time,
        )
        return self.admit(req)

    def admit(self, req: ConnectionRequest) -> AdmissionDecision:
        """Admit a pre-built request (the simulator's entry point)."""
        self.counters.requests += 1
        plan = self.scheme.plan(
            RouteQuery(
                req.source,
                req.destination,
                req.bw_req,
                max_hops=self._qos_bound(req.source, req.destination),
            )
        )
        self.counters.control_messages += plan.control_messages
        decision = self._admission.admit(req, plan)
        if decision.accepted:
            connection = decision.connection
            assert connection is not None
            self._connections[connection.connection_id] = connection
            self.counters.accepted += 1
            overlap = connection.backup_overlap_with_primary()
            if overlap:
                self.counters.backups_with_overlap += 1
                self.counters.backup_overlap_links += overlap
            self.counters.primary_hops_total += connection.primary_route.hop_count
            if connection.backup_route is not None:
                self.counters.backup_hops_total += connection.backup_route.hop_count
        else:
            self.counters.record_rejection(decision.reason)
        return decision

    def _qos_bound(self, source: int, destination: int) -> Optional[int]:
        """The per-connection hop bound under the service's QoS slack:
        minimum hop distance plus the slack, or ``None`` when the
        service imposes no delay QoS."""
        if self.qos_slack is None:
            return None
        distance = self.scheme.context.distance_tables[source].distance(
            destination
        )
        if distance == float("inf"):
            return 1  # unreachable; any bound rejects cleanly
        return int(distance) + self.qos_slack

    def release(self, connection_id: int) -> None:
        """Terminate a connection and return all its resources."""
        try:
            connection = self._connections.pop(connection_id)
        except KeyError:
            raise ConnectionStateError(
                "no active connection with id {}".format(connection_id)
            )
        self._admission.release(connection)
        self.counters.released += 1

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def assess_link_failure(
        self, link_id: int, use_free_bandwidth: bool = False
    ) -> FailureImpact:
        """What would happen if this link failed right now (pure)."""
        return assess_link_failure(
            self.state,
            self._connections.values(),
            link_id,
            use_free_bandwidth=use_free_bandwidth,
        )

    def assess_node_failure(
        self,
        node: int,
        use_free_bandwidth: bool = False,
        count_endpoint_losses: bool = False,
    ) -> FailureImpact:
        """What would happen if this switch failed right now (pure):
        all of its links die at once."""
        return assess_node_failure(
            self.state,
            list(self._connections.values()),
            node,
            self.network,
            use_free_bandwidth=use_free_bandwidth,
            count_endpoint_losses=count_endpoint_losses,
        )

    def fail_link(self, link_id: int, reconfigure: bool = True) -> FailureImpact:
        """Fail a link for real: activate surviving backups, tear down
        casualties, and (optionally) re-protect unprotected survivors
        via DRTP's resource-reconfiguration step.  The link stays out
        of every route search until :meth:`repair_link`."""
        self.state.mark_link_failed(link_id)
        impact = apply_link_failure(
            self.state, self.spare_policy, self._connections, link_id
        )
        if reconfigure:
            reconfigure_unprotected(
                self.state, self.spare_policy, self._connections, self.scheme
            )
        return impact

    def fail_node(self, node: int, reconfigure: bool = True) -> FailureImpact:
        """Fail a switch for real: every adjacent link dies, transit
        connections recover via surviving backups, connections
        terminating at the node are torn down."""
        for link in (
            self.network.out_links(node) + self.network.in_links(node)
        ):
            self.state.mark_link_failed(link.link_id)
        impact = apply_node_failure(
            self.state,
            self.spare_policy,
            self._connections,
            node,
            self.network,
        )
        if reconfigure:
            reconfigure_unprotected(
                self.state, self.spare_policy, self._connections, self.scheme
            )
        return impact

    def repair_link(self, link_id: int) -> None:
        """Return a previously failed link to service; its bandwidth
        becomes routable again immediately."""
        self.state.mark_link_repaired(link_id)

    def repair_node(self, node: int) -> None:
        """Return a switch (all its links) to service."""
        for link in (
            self.network.out_links(node) + self.network.in_links(node)
        ):
            self.state.mark_link_repaired(link.link_id)

    def refresh_database(self) -> None:
        """Re-flood link state (no-op effect for live databases)."""
        if not self.database.live:
            self.database.refresh()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def active_connection_count(self) -> int:
        return len(self._connections)

    def connections(self) -> Iterator[DRConnection]:
        return iter(self._connections.values())

    def connection(self, connection_id: int) -> DRConnection:
        try:
            return self._connections[connection_id]
        except KeyError:
            raise ConnectionStateError(
                "no active connection with id {}".format(connection_id)
            )

    def has_connection(self, connection_id: int) -> bool:
        return connection_id in self._connections

    def links_carrying_primaries(self) -> List[int]:
        """Link ids crossed by at least one active primary — the
        failure sites that matter for the ``P_act-bk`` sweep."""
        seen = set()
        for conn in self._connections.values():
            if conn.is_active:
                seen.update(conn.primary_route.link_ids)
        return sorted(seen)

    def check_invariants(self) -> None:
        """Cross-check ledgers against the live connection table."""
        self.state.check_invariants()
        for conn in self._connections.values():
            for channel in conn.all_backups:
                key = channel.registration_key(conn.connection_id)
                for link_id in channel.route.link_ids:
                    if not self.state.ledger(link_id).has_backup(key):
                        raise ConnectionStateError(
                            "connection {} backup missing from link {} "
                            "registry".format(conn.connection_id, link_id)
                        )
