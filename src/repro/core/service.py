"""DRTPService — the public facade of the library.

One service instance manages the DR-connections of one network under
one routing scheme and one spare-multiplexing policy::

    from repro import DRTPService, DLSRScheme, waxman_network

    net = waxman_network(60, capacity=30.0)
    service = DRTPService(net, DLSRScheme())
    decision = service.request(source=3, destination=41, bw_req=1.0)
    impact = service.assess_link_failure(some_link_id)
    service.release(decision.connection.connection_id)

The service is what the discrete-event simulator drives and what the
examples exercise; it is deliberately synchronous and deterministic so
that replaying one scenario file under different schemes (the paper's
comparison methodology) is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional

from ..network.database import LinkStateDatabase
from ..network.state import NetworkState
from ..routing.base import RoutePlan, RouteQuery, RoutingContext, RoutingScheme
from ..topology.graph import Network
from ..topology.srlg import RiskGroupSet
from .admission import AdmissionController, AdmissionDecision
from .channel import Channel, ChannelRole
from .connection import ConnectionRequest, ConnectionState, DRConnection
from .errors import ConnectionStateError
from .multiplexing import SharedSparePolicy, SparePolicy
from .signaling import BackupRegisterPacket, register_backup_path
from .slab import SlabConnectionStore
from .recovery import (
    FailureImpact,
    apply_failed_links,
    apply_group_failure,
    apply_link_failure,
    apply_node_failure,
    assess_group_failure,
    assess_link_failure,
    assess_node_failure,
    reconfigure_unprotected,
)


@dataclass
class ServiceCounters:
    """Cumulative service-level statistics.

    The ``signaling_*`` block only moves under fault injection: it
    accumulates what the backup-register walks survived (retries,
    drops, crashes, duplicate deliveries, injected latency), and the
    degraded-admission ledger tracks Section 2.3 backup
    re-establishment under adversity.
    """

    requests: int = 0
    accepted: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    released: int = 0
    control_messages: int = 0
    backup_overlap_links: int = 0
    backups_with_overlap: int = 0
    primary_hops_total: int = 0
    backup_hops_total: int = 0
    degraded_admissions: int = 0
    backups_reestablished: int = 0
    reestablish_attempts: int = 0
    signaling_walks: int = 0
    signaling_retries: int = 0
    signaling_drops: int = 0
    signaling_crashes: int = 0
    signaling_duplicates: int = 0
    signaling_gave_up: int = 0
    signaling_delay: float = 0.0

    @property
    def acceptance_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.accepted / self.requests

    @property
    def rejection_ratio(self) -> float:
        if self.requests == 0:
            return 0.0
        return sum(self.rejected.values()) / self.requests

    @property
    def reestablish_success_ratio(self) -> float:
        """Fraction of background re-establishment attempts that
        restored protection; 0.0 before any attempt."""
        if self.reestablish_attempts == 0:
            return 0.0
        return self.backups_reestablished / self.reestablish_attempts

    @property
    def mean_signaling_retries(self) -> float:
        if self.signaling_walks == 0:
            return 0.0
        return self.signaling_retries / self.signaling_walks

    def record_rejection(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def record_signaling(self, registration) -> None:
        """Fold one backup walk's fault accounting into the totals."""
        self.signaling_walks += 1
        self.signaling_retries += registration.retries
        self.signaling_drops += registration.drops
        self.signaling_crashes += registration.crashes
        self.signaling_duplicates += registration.duplicates
        self.signaling_delay += registration.delay
        if registration.gave_up:
            self.signaling_gave_up += 1


class DRTPService:
    """Admission, teardown and recovery for DR-connections."""

    def __init__(
        self,
        network: Network,
        scheme: RoutingScheme,
        spare_policy: Optional[SparePolicy] = None,
        require_backup: bool = True,
        database: Optional[LinkStateDatabase] = None,
        live_database: bool = True,
        qos_slack: Optional[int] = None,
        fault_injector=None,
        retry_policy=None,
        metrics=None,
        trace=None,
        risk_groups: Optional[RiskGroupSet] = None,
    ) -> None:
        """``live_database=False`` routes from periodically-refreshed
        snapshots instead of instantly-converged link state — the
        staleness regime real link-state protocols live in.  Call
        :meth:`refresh_database` (or let the simulator schedule it) to
        re-flood; admission rolls back cleanly when stale information
        leads routing astray.

        ``qos_slack`` models a delay QoS: every connection's routes
        (primary and backups) are bounded to ``min_hop_distance +
        qos_slack`` hops.  ``None`` (the paper's evaluation setting)
        leaves route lengths unbounded.

        ``fault_injector`` (a
        :class:`~repro.faults.injector.FaultInjector`) makes backup
        signaling lossy; ``retry_policy`` (a
        :class:`~repro.faults.retry.RetryPolicy`) governs
        retransmission.  With an injector present, a request whose
        backup signaling exhausts its retries is admitted *unprotected*
        and queued — drive :meth:`reestablish_backup` (the simulator
        and chaos runner schedule it) to restore its protection in the
        background.

        ``metrics`` (a :class:`~repro.metrics.ServiceMetrics`) makes
        the service observable: admissions, rejections by reason,
        admission latency, signaling and recovery counters flow into
        its registry.  ``None`` (the default, and what every batch
        experiment uses) records nothing and costs nothing.

        ``trace`` (a :class:`~repro.observability.TraceCollector`)
        records hierarchical spans for every admit/release/recover —
        including the route searches and signaling walks they contain —
        under the same optional-dependency discipline as ``metrics``:
        ``None`` records nothing and costs nothing.

        ``risk_groups`` (a :class:`~repro.topology.srlg.RiskGroupSet`)
        installs a shared-risk-link-group assignment before any route
        is computed: routing costs, conflict accounting and spare
        sizing all become group-aware (see :mod:`repro.topology.srlg`).
        ``None`` keeps the paper's per-link model."""
        self.network = network
        self.state = NetworkState(network)
        if risk_groups is not None:
            # Before the database: a snapshot database built afterwards
            # would otherwise miss the group tables on its first flood.
            self.state.install_risk_groups(risk_groups)
        if database is not None:
            self.database = database
        else:
            self.database = LinkStateDatabase(self.state, live=live_database)
        self.scheme = scheme
        scheme.bind(RoutingContext(network, self.state, self.database))
        self.spare_policy = spare_policy or SharedSparePolicy()
        if qos_slack is not None and qos_slack < 0:
            raise ValueError("qos_slack must be >= 0 when given")
        self.qos_slack = qos_slack
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        self.metrics = metrics
        if metrics is not None:
            metrics.bind_service(self)
            scheme.metrics = metrics
        self.trace = trace
        if trace is not None:
            scheme.trace = trace
        self._admission = AdmissionController(
            self.state,
            self.spare_policy,
            require_backup=require_backup,
            injector=fault_injector,
            retry_policy=retry_policy,
            metrics=metrics,
            trace=trace,
        )
        # Hot connection state lives in a slab store: dict-identical
        # iteration order (golden traces depend on it) with slot reuse
        # bounding footprint by the *peak* population, not total churn.
        self._connections: SlabConnectionStore = SlabConnectionStore()
        self._pending_backup: set = set()
        self._next_request_id = 0
        self.counters = ServiceCounters()

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def request(
        self,
        source: int,
        destination: int,
        bw_req: float,
        arrival_time: float = 0.0,
        holding_time: float = float("inf"),
        request_id: Optional[int] = None,
    ) -> AdmissionDecision:
        """Ask for a DR-connection; routes, reserves and registers."""
        if request_id is None:
            request_id = self._next_request_id
        self._next_request_id = max(self._next_request_id, request_id) + 1
        req = ConnectionRequest(
            request_id=request_id,
            source=source,
            destination=destination,
            bw_req=bw_req,
            arrival_time=arrival_time,
            holding_time=holding_time,
        )
        return self.admit(req)

    def bind_trace(self, trace) -> None:
        """Attach a span collector after construction (the server does
        this when it is handed an un-traced service)."""
        self.trace = trace
        self.scheme.trace = trace
        self._admission.bind_trace(trace)

    def admit(self, req: ConnectionRequest) -> AdmissionDecision:
        """Admit a pre-built request (the simulator's entry point)."""
        if self.trace is None:
            return self._admit(req)
        with self.trace.span(
            "service.admit",
            category="service",
            scheme=self.scheme.name,
            request=req.request_id,
            source=req.source,
            destination=req.destination,
            bw=req.bw_req,
        ) as span:
            decision = self._admit(req)
            span.tag(
                accepted=decision.accepted,
                reason=decision.reason,
                degraded=decision.degraded,
            )
            return decision

    def _admit(self, req: ConnectionRequest) -> AdmissionDecision:
        """The admission transaction proper (tracing handled above)."""
        started = perf_counter() if self.metrics is not None else 0.0
        self.counters.requests += 1
        plan = self._plan_admission(req)
        return self._finish_admission(req, plan, started)

    def request_planned(
        self,
        source: int,
        destination: int,
        bw_req: float,
        plan: RoutePlan,
        arrival_time: float = 0.0,
        holding_time: float = float("inf"),
        request_id: Optional[int] = None,
    ) -> AdmissionDecision:
        """Admit with an externally computed plan — the cluster commit
        authority's entry point, where admission shards plan against
        replicated epochs and only the reserve/register transaction
        runs here.  Mirrors :meth:`request`'s id bookkeeping."""
        if request_id is None:
            request_id = self._next_request_id
        self._next_request_id = max(self._next_request_id, request_id) + 1
        req = ConnectionRequest(
            request_id=request_id,
            source=source,
            destination=destination,
            bw_req=bw_req,
            arrival_time=arrival_time,
            holding_time=holding_time,
        )
        return self.admit_planned(req, plan)

    def admit_planned(
        self, req: ConnectionRequest, plan: RoutePlan
    ) -> AdmissionDecision:
        """Admit a pre-built request with a pre-computed plan."""
        if self.trace is None:
            return self._admit_planned(req, plan)
        with self.trace.span(
            "service.admit",
            category="service",
            scheme=self.scheme.name,
            request=req.request_id,
            source=req.source,
            destination=req.destination,
            bw=req.bw_req,
        ) as span:
            decision = self._admit_planned(req, plan)
            span.tag(
                accepted=decision.accepted,
                reason=decision.reason,
                degraded=decision.degraded,
            )
            return decision

    def _admit_planned(
        self, req: ConnectionRequest, plan: RoutePlan
    ) -> AdmissionDecision:
        started = perf_counter() if self.metrics is not None else 0.0
        self.counters.requests += 1
        return self._finish_admission(req, plan, started)

    def _plan_admission(self, req: ConnectionRequest) -> RoutePlan:
        """Run the scheme's planner for a request (no state mutation)."""
        query = RouteQuery(
            req.source,
            req.destination,
            req.bw_req,
            max_hops=self._qos_bound(req.source, req.destination),
        )
        if self.metrics is not None or self.trace is not None:
            # Instrumented planning path when the scheme provides it
            # (duck-typed test schemes may not inherit RoutingScheme).
            planner = getattr(
                self.scheme, "plan_instrumented", self.scheme.plan
            )
            return planner(query)
        return self.scheme.plan(query)

    def _finish_admission(
        self, req: ConnectionRequest, plan: RoutePlan, started: float
    ) -> AdmissionDecision:
        """Commit a planned admission: reserve, register, count."""
        self.counters.control_messages += plan.control_messages
        decision = self._admission.admit(req, plan)
        for registration in decision.registrations:
            self.counters.record_signaling(registration)
        if decision.accepted:
            connection = decision.connection
            assert connection is not None
            self._connections[connection.connection_id] = connection
            self.counters.accepted += 1
            if decision.degraded:
                self.counters.degraded_admissions += 1
                self._pending_backup.add(connection.connection_id)
            overlap = connection.backup_overlap_with_primary()
            if overlap:
                self.counters.backups_with_overlap += 1
                self.counters.backup_overlap_links += overlap
            self.counters.primary_hops_total += connection.primary_route.hop_count
            if connection.backup_route is not None:
                self.counters.backup_hops_total += connection.backup_route.hop_count
        else:
            self.counters.record_rejection(decision.reason)
        if self.metrics is not None:
            self.metrics.observe_admission(
                self.scheme.name, decision, perf_counter() - started
            )
        return decision

    def _qos_bound(self, source: int, destination: int) -> Optional[int]:
        """The per-connection hop bound under the service's QoS slack:
        minimum hop distance plus the slack, or ``None`` when the
        service imposes no delay QoS."""
        if self.qos_slack is None:
            return None
        distance = self.scheme.context.distance_tables[source].distance(
            destination
        )
        if distance == float("inf"):
            return 1  # unreachable; any bound rejects cleanly
        return int(distance) + self.qos_slack

    def release(self, connection_id: int) -> None:
        """Terminate a connection and return all its resources."""
        if self.trace is None:
            return self._release(connection_id)
        with self.trace.span(
            "service.release",
            category="service",
            scheme=self.scheme.name,
            connection=connection_id,
        ):
            return self._release(connection_id)

    def _release(self, connection_id: int) -> None:
        try:
            connection = self._connections.pop(connection_id)
        except KeyError:
            raise ConnectionStateError(
                "no active connection with id {}".format(connection_id)
            )
        self._pending_backup.discard(connection_id)
        self._admission.release(connection)
        self.counters.released += 1
        if self.metrics is not None:
            self.metrics.observe_release(self.scheme.name)

    # ------------------------------------------------------------------
    # Degraded-mode protection (Section 2.3 under adversity)
    # ------------------------------------------------------------------
    def pending_backup_ids(self) -> List[int]:
        """Connections admitted (or left) unprotected and queued for
        background backup re-establishment.  Entries whose connection
        departed, died, or regained protection by other means are
        pruned on read."""
        stale = set()
        for connection_id in self._pending_backup:
            conn = self._connections.get(connection_id)
            if conn is None or not conn.is_active or conn.backup is not None:
                stale.add(connection_id)
        self._pending_backup -= stale
        return sorted(self._pending_backup)

    def queue_backup_reestablishment(self, connection_id: int) -> bool:
        """Enqueue an active unprotected connection for background
        re-protection (used after failures leave survivors bare)."""
        conn = self._connections.get(connection_id)
        if conn is None or not conn.is_active or conn.backup is not None:
            return False
        self._pending_backup.add(connection_id)
        return True

    def reestablish_backup(self, connection_id: int) -> bool:
        """One background attempt to restore a queued connection's
        protection: plan a fresh backup against the standing primary
        and register it (under the service's fault injector and retry
        policy, if any).

        Returns True when the connection is protected afterwards —
        including "already was" — and False when it remains
        unprotected (caller reschedules) or no longer exists."""
        if self.trace is None:
            return self._reestablish_backup(connection_id)
        with self.trace.span(
            "service.reestablish",
            category="service",
            scheme=self.scheme.name,
            connection=connection_id,
        ) as span:
            restored = self._reestablish_backup(connection_id)
            span.tag(restored=restored)
            return restored

    def _reestablish_backup(self, connection_id: int) -> bool:
        conn = self._connections.get(connection_id)
        if conn is None or not conn.is_active:
            self._pending_backup.discard(connection_id)
            return False
        if conn.backup is not None:
            self._pending_backup.discard(connection_id)
            return True
        self.counters.reestablish_attempts += 1
        backup = self.scheme.plan_backup(
            RouteQuery(
                conn.source,
                conn.destination,
                conn.bw_req,
                max_hops=self._qos_bound(conn.source, conn.destination),
            ),
            conn.primary_route,
        )
        if backup is None or backup.lset == conn.primary_route.lset:
            if self.metrics is not None:
                self.metrics.observe_reestablish(False)
            return False
        packet = BackupRegisterPacket(
            connection_id=conn.connection_id,
            backup_route=backup,
            primary_lset=conn.primary_route.lset,
            bw_req=conn.bw_req,
        )
        registration = register_backup_path(
            self.state, self.spare_policy, packet,
            self.fault_injector, self.retry_policy,
            metrics=self.metrics, trace=self.trace,
        )
        self.counters.record_signaling(registration)
        if not registration.success:
            if self.metrics is not None:
                self.metrics.observe_reestablish(False)
            return False
        conn.backup = Channel(role=ChannelRole.BACKUP, route=backup)
        if conn.state is ConnectionState.UNPROTECTED:
            conn.state = ConnectionState.ACTIVE
        self._pending_backup.discard(connection_id)
        self.counters.backups_reestablished += 1
        if self.metrics is not None:
            self.metrics.observe_reestablish(True)
        return True

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def assess_link_failure(
        self, link_id: int, use_free_bandwidth: bool = False
    ) -> FailureImpact:
        """What would happen if this link failed right now (pure)."""
        return assess_link_failure(
            self.state,
            self._connections.values(),
            link_id,
            use_free_bandwidth=use_free_bandwidth,
        )

    def assess_node_failure(
        self,
        node: int,
        use_free_bandwidth: bool = False,
        count_endpoint_losses: bool = False,
    ) -> FailureImpact:
        """What would happen if this switch failed right now (pure):
        all of its links die at once."""
        return assess_node_failure(
            self.state,
            list(self._connections.values()),
            node,
            self.network,
            use_free_bandwidth=use_free_bandwidth,
            count_endpoint_losses=count_endpoint_losses,
        )

    def fail_link(self, link_id: int, reconfigure: bool = True) -> FailureImpact:
        """Fail a link for real: activate surviving backups, tear down
        casualties, and (optionally) re-protect unprotected survivors
        via DRTP's resource-reconfiguration step.  The link stays out
        of every route search until :meth:`repair_link`."""
        if self.trace is None:
            return self._fail_link(link_id, reconfigure)
        with self.trace.span(
            "service.fail_link",
            category="service",
            scheme=self.scheme.name,
            link=link_id,
        ) as span:
            impact = self._fail_link(link_id, reconfigure)
            span.tag(
                affected=impact.affected,
                activated=impact.activated,
                lost=impact.failed,
            )
            return impact

    def _fail_link(self, link_id: int, reconfigure: bool) -> FailureImpact:
        self.state.mark_link_failed(link_id)
        impact = apply_link_failure(
            self.state, self.spare_policy, self._connections, link_id
        )
        if reconfigure:
            reconfigure_unprotected(
                self.state, self.spare_policy, self._connections, self.scheme
            )
        if self.metrics is not None:
            self.metrics.observe_failure(impact)
        return impact

    def fail_node(self, node: int, reconfigure: bool = True) -> FailureImpact:
        """Fail a switch for real: every adjacent link dies, transit
        connections recover via surviving backups, connections
        terminating at the node are torn down."""
        if self.trace is None:
            return self._fail_node(node, reconfigure)
        with self.trace.span(
            "service.fail_node",
            category="service",
            scheme=self.scheme.name,
            node=node,
        ) as span:
            impact = self._fail_node(node, reconfigure)
            span.tag(
                affected=impact.affected,
                activated=impact.activated,
                lost=impact.failed,
            )
            return impact

    def _fail_node(self, node: int, reconfigure: bool) -> FailureImpact:
        for link in (
            self.network.out_links(node) + self.network.in_links(node)
        ):
            self.state.mark_link_failed(link.link_id)
        impact = apply_node_failure(
            self.state,
            self.spare_policy,
            self._connections,
            node,
            self.network,
        )
        if reconfigure:
            reconfigure_unprotected(
                self.state, self.spare_policy, self._connections, self.scheme
            )
        if self.metrics is not None:
            self.metrics.observe_failure(impact)
        return impact

    # ------------------------------------------------------------------
    # Correlated (shared-risk) failures
    # ------------------------------------------------------------------
    @property
    def risk_groups(self) -> Optional[RiskGroupSet]:
        """The installed SRLG assignment, if any."""
        return self.state.risk_groups

    def install_risk_groups(self, groups: RiskGroupSet) -> None:
        """Install (or replace) the SRLG assignment on a running
        service.  Conflict accounting is rebuilt from the standing
        backup registrations; snapshot databases pick the group tables
        up at their next refresh."""
        self.state.install_risk_groups(groups)

    def _require_risk_groups(self) -> RiskGroupSet:
        groups = self.state.risk_groups
        if groups is None:
            raise ConnectionStateError(
                "no risk groups installed; pass risk_groups= to the "
                "service or call install_risk_groups() first"
            )
        return groups

    def assess_group_failure(
        self, group_id: int, use_free_bandwidth: bool = False
    ) -> FailureImpact:
        """What would happen if every link of one shared-risk group
        failed simultaneously (pure).  Aggregated over groups this
        yields the generalized survivability metric ``P_act-bk^(g)``."""
        return assess_group_failure(
            self.state,
            self._connections.values(),
            group_id,
            self._require_risk_groups(),
            use_free_bandwidth=use_free_bandwidth,
        )

    def fail_group(
        self, group_id: int, reconfigure: bool = True
    ) -> FailureImpact:
        """Fail an entire shared-risk group for real: all member links
        die at once and the affected connections race for spare in a
        single activation round (simultaneous semantics — unlike
        calling :meth:`fail_link` per member, which would let earlier
        casualties re-protect before later links die)."""
        if self.trace is None:
            return self._fail_group(group_id, reconfigure)
        with self.trace.span(
            "service.fail_group",
            category="service",
            scheme=self.scheme.name,
            group=group_id,
        ) as span:
            impact = self._fail_group(group_id, reconfigure)
            span.tag(
                affected=impact.affected,
                activated=impact.activated,
                lost=impact.failed,
            )
            return impact

    def _fail_group(self, group_id: int, reconfigure: bool) -> FailureImpact:
        groups = self._require_risk_groups()
        for link_id in groups.members(group_id):
            self.state.mark_link_failed(link_id)
        impact = apply_group_failure(
            self.state,
            self.spare_policy,
            self._connections,
            group_id,
            groups,
        )
        if reconfigure:
            reconfigure_unprotected(
                self.state, self.spare_policy, self._connections, self.scheme
            )
        if self.metrics is not None:
            self.metrics.observe_failure(impact)
            self.metrics.observe_group_failure(
                impact, len(groups.members(group_id))
            )
        return impact

    def fail_link_set(
        self, link_ids: Iterable[int], reconfigure: bool = True
    ) -> FailureImpact:
        """Fail an arbitrary set of links simultaneously (one
        activation round) — the regional-fault primitive for
        neighborhood cuts that do not coincide with a named risk
        group."""
        failed = frozenset(link_ids)
        if self.trace is None:
            return self._fail_link_set(failed, reconfigure)
        with self.trace.span(
            "service.fail_link_set",
            category="service",
            scheme=self.scheme.name,
            links=len(failed),
        ) as span:
            impact = self._fail_link_set(failed, reconfigure)
            span.tag(
                affected=impact.affected,
                activated=impact.activated,
                lost=impact.failed,
            )
            return impact

    def _fail_link_set(
        self, failed: frozenset, reconfigure: bool
    ) -> FailureImpact:
        for link_id in failed:
            self.state.mark_link_failed(link_id)
        impact = apply_failed_links(
            self.state,
            self.spare_policy,
            self._connections,
            failed,
            label_link=min(failed) if len(failed) == 1 else -1,
        )
        if reconfigure:
            reconfigure_unprotected(
                self.state, self.spare_policy, self._connections, self.scheme
            )
        if self.metrics is not None:
            self.metrics.observe_failure(impact)
            self.metrics.observe_group_failure(impact, len(failed))
        return impact

    def repair_group(self, group_id: int) -> None:
        """Return every link of a shared-risk group to service."""
        members = self._require_risk_groups().members(group_id)
        for link_id in members:
            self.state.mark_link_repaired(link_id)
        if self.metrics is not None:
            self.metrics.observe_repair(len(members))

    def repair_link(self, link_id: int) -> None:
        """Return a previously failed link to service; its bandwidth
        becomes routable again immediately.  Repairing a healthy link
        is an idempotent no-op."""
        self.state.mark_link_repaired(link_id)
        if self.metrics is not None:
            self.metrics.observe_repair()

    def repair_node(self, node: int) -> None:
        """Return a switch (all its links) to service."""
        repaired = 0
        for link in (
            self.network.out_links(node) + self.network.in_links(node)
        ):
            self.state.mark_link_repaired(link.link_id)
            repaired += 1
        if self.metrics is not None:
            self.metrics.observe_repair(repaired)

    def refresh_database(self) -> None:
        """Re-flood link state (no-op effect for live databases)."""
        if not self.database.live:
            self.database.refresh()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def active_connection_count(self) -> int:
        return len(self._connections)

    def unprotected_ids(self) -> List[int]:
        """Active connections currently running without a backup."""
        return sorted(
            conn.connection_id
            for conn in self._connections.values()
            if conn.is_active and conn.backup is None
        )

    def connections(self) -> Iterator[DRConnection]:
        return iter(self._connections.values())

    def connection(self, connection_id: int) -> DRConnection:
        try:
            return self._connections[connection_id]
        except KeyError:
            raise ConnectionStateError(
                "no active connection with id {}".format(connection_id)
            )

    def has_connection(self, connection_id: int) -> bool:
        return connection_id in self._connections

    def connection_store_stats(self) -> Dict[str, int]:
        """Slab footprint/reuse counters (soak reports archive these to
        prove steady-state memory stays flat under churn)."""
        return self._connections.stats()

    def warmstart_stats(self) -> Optional[Dict[str, int]]:
        """Warm backup-candidate cache effectiveness counters
        (probes/hits/misses/invalidations; see
        :mod:`repro.routing.warmstart`), or ``None`` when the database
        runs without the cache — object-path kernels, the rebuilt
        reference database, or ``REPRO_WARMSTART=0``."""
        cache = getattr(self.database, "_warmstart_cache", None)
        if cache is None:
            # Never consulted (object path, reference database, or
            # gated off) — don't create one just to report zeros.
            return None
        return cache.stats()

    def links_carrying_primaries(self) -> List[int]:
        """Link ids crossed by at least one active primary — the
        failure sites that matter for the ``P_act-bk`` sweep."""
        seen = set()
        for conn in self._connections.values():
            if conn.is_active:
                seen.update(conn.primary_route.link_ids)
        return sorted(seen)

    def check_invariants(self) -> None:
        """Cross-check ledgers against the live connection table."""
        self.state.check_invariants()
        for conn in self._connections.values():
            for channel in conn.all_backups:
                key = channel.registration_key(conn.connection_id)
                for link_id in channel.route.link_ids:
                    if not self.state.ledger(link_id).has_backup(key):
                        raise ConnectionStateError(
                            "connection {} backup missing from link {} "
                            "registry".format(conn.connection_id, link_id)
                        )
