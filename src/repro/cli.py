"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``topology`` — generate an evaluation network and save it as JSON;
* ``scenario`` — generate a Poisson request trace (a scenario file);
* ``replay``  — replay a scenario against a topology under a scheme,
  printing acceptance, fault tolerance and overhead-relevant stats;
* ``trace``   — replay a scenario with hierarchical span tracing and
  export a Chrome ``trace_event`` JSON (open in ``chrome://tracing``
  or https://ui.perfetto.dev) plus an optional NDJSON stream — the
  "why was this DR-connection rejected" debugging tool
  (``docs/tracing.md``);
* ``assess``  — load a topology, establish random DR-connections, and
  sweep single-link (or node) failures;
* ``campaign`` — sharded simulation campaigns: ``campaign run``
  executes the figure grid over a multiprocessing worker pool with an
  append-only checkpoint journal, ``campaign resume`` continues an
  interrupted run from that journal, ``campaign status`` reports
  progress from ``campaign_manifest.json``; bare ``campaign`` stays
  an alias for ``python -m repro.experiments.run_all``;
* ``chaos``   — run a fault-injection chaos campaign (lossy signaling,
  router crashes, link flaps, correlated bursts, stale link state)
  and report recovery latency, retries and residual unprotection;
* ``serve``   — run the online admission-control server: NDJSON over
  TCP or a Unix socket, Prometheus/JSON metrics, graceful SIGTERM
  drain with a final metrics manifest;
* ``loadtest`` — drive a running server with a deterministic seeded
  workload (Poisson or MMPP/drift production arrivals, hold times,
  optional fault mix) and optionally diff its decisions against an
  in-process sequential replay of the same timeline;
* ``soak``    — long-horizon churn: stream a production trace (MMPP
  bursts, drifting hot spots) through one in-process service for
  10^5–10^6 admissions, with windowed metrics, slab-reuse stats and
  peak-RSS accounting (``docs/architecture.md``, memory layer).

Every command is deterministic given its ``--seed``; topology and
scenario files round-trip through the serializers in
:mod:`repro.topology.serialize` and :mod:`repro.simulation.scenario`,
so a full evaluation can be driven from the shell with artifacts on
disk at every step — the workflow the paper describes (Matlab scenario
files fed into ns) with both halves in one tool.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence

from .analysis import (
    FaultToleranceObserver,
    SpareShareObserver,
    format_table,
)
from .core import DRTPService
from .experiments import make_scheme
from .experiments.run_all import main as campaign_main
from .simulation import Scenario, ScenarioSimulator, generate_scenario
from .topology import (
    load_network,
    load_network_with_groups,
    mesh_conduit_groups,
    mesh_network,
    ring_network,
    save_network,
    waxman_network,
)
from .topology.waxman import WaxmanParameters

SCHEME_CHOICES = ("D-LSR", "P-LSR", "BF", "disjoint", "random", "no-backup")


def _positive_float(text: str) -> float:
    """Argparse type: a strictly positive float.

    Rates, durations, windows and hold times silently fed ``0`` or a
    negative value used to surface as a downstream ZeroDivisionError,
    ValueError traceback, or an empty-timeline hang; rejecting them at
    the parser gives a one-line usage error instead.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a number, got {!r}".format(text)
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(
            "must be positive, got {}".format(text)
        )
    return value


def _positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected an integer, got {!r}".format(text)
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(
            "must be positive, got {}".format(text)
        )
    return value


def _fraction(text: str) -> float:
    """Argparse type: a float in (0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a number, got {!r}".format(text)
        )
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError(
            "must be in (0, 1], got {}".format(text)
        )
    return value


def _package_version() -> str:
    """Installed distribution version, falling back to the package
    constant when running from a source tree."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from . import __version__

        return __version__


def _add_production_knobs(parser: argparse.ArgumentParser) -> None:
    """The MMPP/drift knobs shared by production-workload commands
    (``scenario --workload production``, ``soak``, ``loadtest
    --workload production``)."""
    parser.add_argument("--burst-factor", type=_positive_float, default=4.0,
                        help="burst-phase rate as a multiple of calm")
    parser.add_argument("--calm-mean", type=_positive_float, default=3600.0,
                        help="mean calm-phase sojourn, simulated seconds")
    parser.add_argument("--burst-mean", type=_positive_float, default=600.0,
                        help="mean burst-phase sojourn, simulated seconds")
    parser.add_argument("--hot-count", type=_positive_int, default=10,
                        help="size of the drifting hot destination set")
    parser.add_argument("--hot-fraction", type=_fraction, default=0.5,
                        help="share of connections aimed at hot nodes")
    parser.add_argument("--drift-epoch", type=_positive_float, default=3600.0,
                        help="seconds between hot-set migrations")
    parser.add_argument("--drift-migrate", type=_positive_int, default=1,
                        help="hot nodes replaced per migration step")


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` argument parser (one subparser per command;
    importable so tests can drive parsing without a process)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dependable real-time connection routing (DSN 2001 "
        "reproduction) command-line tools",
    )
    parser.add_argument(
        "--version", action="version",
        version="%(prog)s {}".format(_package_version()),
    )
    sub = parser.add_subparsers(dest="command")

    topo = sub.add_parser("topology", help="generate a network file")
    topo.add_argument("output", help="where to write the topology JSON")
    topo.add_argument("--kind", choices=("waxman", "mesh", "ring"),
                      default="waxman")
    topo.add_argument("--nodes", type=int, default=60)
    topo.add_argument("--degree", type=float, default=3.0,
                      help="Waxman average degree target")
    topo.add_argument("--rows", type=int, default=4, help="mesh rows")
    topo.add_argument("--cols", type=int, default=4, help="mesh cols")
    topo.add_argument("--capacity", type=float, default=30.0)
    topo.add_argument("--seed", type=int, default=0)
    topo.add_argument("--srlg", choices=("none", "conduits", "proximity"),
                      default="none",
                      help="embed a risk-group assignment: 'conduits' "
                      "bundles mesh rows/columns, 'proximity' buckets "
                      "Waxman links by geographic cell")
    topo.add_argument("--srlg-cell", type=float, default=0.25,
                      help="proximity bucketing cell size (unit square)")

    scen = sub.add_parser("scenario", help="generate a scenario file")
    scen.add_argument("output", help="where to write the scenario JSON")
    scen.add_argument("--nodes", type=_positive_int, default=60)
    scen.add_argument("--rate", type=_positive_float, default=0.4,
                      help="mean arrival rate (connections/second)")
    scen.add_argument("--duration", type=_positive_float, default=5400.0,
                      help="simulated seconds")
    scen.add_argument("--workload", choices=("poisson", "production"),
                      default="poisson",
                      help="'poisson' is the paper's process; "
                      "'production' layers MMPP bursts and hot-spot "
                      "drift from repro.loadmodel")
    scen.add_argument("--pattern", choices=("UT", "NT"), default="UT",
                      help="endpoint pattern (poisson workload only; "
                      "production always drifts an NT-style hot set)")
    scen.add_argument("--bw", type=_positive_float, default=1.0)
    scen.add_argument("--hold-min", type=_positive_float, default=1200.0,
                      help="minimum holding time, seconds (paper: 20min)")
    scen.add_argument("--hold-max", type=_positive_float, default=3600.0,
                      help="maximum holding time, seconds (paper: 60min)")
    scen.add_argument("--seed", type=int, default=0)
    _add_production_knobs(scen)

    replay = sub.add_parser("replay", help="replay a scenario file")
    replay.add_argument("topology", help="topology JSON from `topology`")
    replay.add_argument("scenario", help="scenario JSON from `scenario`")
    replay.add_argument("--scheme", choices=SCHEME_CHOICES, default="D-LSR")
    replay.add_argument("--warmup", type=float, default=None,
                        help="seconds before measurement (default: half)")
    replay.add_argument("--snapshots", type=int, default=4)
    replay.add_argument("--num-backups", type=int, default=1)
    replay.add_argument("--oracle", action="store_true",
                        help="replay under the differential-testing "
                        "oracle: every operation is mirrored into a "
                        "naive reference service and diffed "
                        "bit-for-bit (slow; fails loudly on any "
                        "fast-path divergence)")

    trace = sub.add_parser(
        "trace",
        help="replay a scenario with span tracing; export a Chrome "
        "trace (chrome://tracing / Perfetto) and optional NDJSON",
    )
    trace.add_argument("topology", help="topology JSON from `topology`")
    trace.add_argument("scenario", help="scenario JSON from `scenario`")
    trace.add_argument("--scheme", choices=SCHEME_CHOICES, default="D-LSR")
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="Chrome trace_event JSON output path")
    trace.add_argument("--ndjson", default=None, metavar="PATH",
                       help="also write the spans as an NDJSON stream")
    trace.add_argument("--max-spans", type=int, default=200_000,
                       metavar="N",
                       help="span ring-buffer bound; oldest spans are "
                       "evicted and counted once exceeded")
    trace.add_argument("--warmup", type=float, default=None,
                       help="seconds before measurement (default: half)")
    trace.add_argument("--rejections", type=int, default=5, metavar="N",
                       help="rejected admissions to summarize (0 = none)")

    assess = sub.add_parser(
        "assess", help="failure sweep over a randomly loaded network"
    )
    assess.add_argument("topology", help="topology JSON from `topology`")
    assess.add_argument("--scheme", choices=SCHEME_CHOICES, default="D-LSR")
    assess.add_argument("--connections", type=int, default=50)
    assess.add_argument("--bw", type=float, default=1.0)
    assess.add_argument("--seed", type=int, default=0)
    assess.add_argument("--nodes", action="store_true",
                        help="sweep node failures instead of link failures")

    camp = sub.add_parser(
        "campaign",
        help="sharded simulation campaigns (run / resume / status); "
        "with no subcommand: regenerate every table and figure",
    )
    camp.add_argument("--scale", choices=("paper", "quick", "smoke"),
                      default="quick")
    camp.add_argument("--seed", type=int, default=7)
    camp.add_argument("--skip-ablations", action="store_true")
    camp.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes for the figure campaign")
    csub = camp.add_subparsers(dest="campaign_command")

    def _grid_options(p):
        p.add_argument("--scale", choices=("paper", "quick", "smoke"),
                       default="quick")
        p.add_argument("--seed", type=int, default=7,
                       help="master scenario seed")
        p.add_argument("--degrees", default="3,4", metavar="LIST",
                       help="comma-separated average degrees E")
        p.add_argument("--patterns", default="UT,NT", metavar="LIST",
                       help="comma-separated traffic patterns")
        p.add_argument("--lambdas", default=None, metavar="LIST",
                       help="comma-separated arrival rates (default: "
                       "each degree's figure-panel x-axis)")
        p.add_argument("--schemes", default=",".join(
            ("D-LSR", "P-LSR", "BF")), metavar="LIST",
            help="comma-separated routing schemes")

    crun = csub.add_parser(
        "run", help="run a sharded campaign with checkpointing"
    )
    _grid_options(crun)
    crun.add_argument("--dir", required=True, metavar="DIR",
                      help="campaign directory (journal, manifest, "
                      "merged CSV outputs)")
    crun.add_argument("--jobs", type=int, default=1, metavar="N",
                      help="worker processes (1 = inline)")
    crun.add_argument("--resume", action="store_true",
                      help="continue if DIR already holds a journal")
    crun.add_argument("--stop-after", type=int, default=None,
                      metavar="CELLS",
                      help="stop after this many newly completed cells "
                      "(simulates an interruption; resume later)")
    crun.add_argument("--trace-dir", default=None, metavar="DIR",
                      help="collect per-cell worker spans and write "
                      "campaign_trace.json/.ndjson into DIR")

    cres = csub.add_parser(
        "resume", help="resume an interrupted campaign from its journal"
    )
    cres.add_argument("--dir", required=True, metavar="DIR")
    cres.add_argument("--jobs", type=int, default=1, metavar="N")
    cres.add_argument("--trace-dir", default=None, metavar="DIR",
                      help="collect per-cell worker spans and write "
                      "campaign_trace.json/.ndjson into DIR")

    cstat = csub.add_parser(
        "status", help="report campaign progress from the manifest"
    )
    cstat.add_argument("--dir", required=True, metavar="DIR")
    cstat.add_argument("--json", action="store_true",
                       help="print the raw manifest JSON")

    chaos = sub.add_parser(
        "chaos", help="run a fault-injection chaos campaign"
    )
    chaos.add_argument("--rows", type=int, default=8, help="mesh rows")
    chaos.add_argument("--cols", type=int, default=8, help="mesh cols")
    chaos.add_argument("--capacity", type=float, default=30.0)
    chaos.add_argument("--scheme", choices=SCHEME_CHOICES, default="D-LSR")
    chaos.add_argument("--rate", type=_positive_float, default=2.0,
                       help="Poisson arrival rate (connections/second)")
    chaos.add_argument("--duration", type=_positive_float, default=600.0,
                       help="simulated seconds")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--plan", default=None,
                       help="fault-plan JSON (default: every fault family "
                       "at baseline intensity)")
    chaos.add_argument("--intensity", type=float, default=1.0,
                       help="scale the default plan's fault rates")
    chaos.add_argument("--retry-interval", type=float, default=5.0,
                       help="background backup re-establishment cadence")
    chaos.add_argument("--report", default=None,
                       help="also write the report as JSON here")
    chaos.add_argument("--trace", default=None,
                       help="write a JSON-lines event trace here")
    chaos.add_argument("--log", default=None, metavar="PATH",
                       help="write the textual report here (default: "
                       "benchmarks/results/chaos_<scheme>_seed<seed>.log"
                       ", a gitignored location; pass 'none' to skip)")
    chaos.add_argument("--verify", action="store_true",
                       help="run the campaign twice and assert the "
                       "reports are bit-for-bit identical")
    chaos.add_argument("--srlg", choices=("none", "conduits"),
                       default="none",
                       help="shared-risk model: 'conduits' bundles the "
                       "mesh's row/column conduits into risk groups, "
                       "sizes spare per group, and lets the plan's "
                       "regional family cut whole conduits")

    def _endpoint_options(p):
        p.add_argument("--socket", default=None, metavar="PATH",
                       help="serve/connect on a Unix socket")
        p.add_argument("--host", default=None,
                       help="TCP host (default 127.0.0.1 when no socket)")
        p.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral)")

    def _topology_options(p):
        p.add_argument("--topology", default=None, metavar="PATH",
                       help="topology JSON (default: a mesh from "
                       "--rows/--cols/--capacity)")
        p.add_argument("--rows", type=int, default=8, help="mesh rows")
        p.add_argument("--cols", type=int, default=8, help="mesh cols")
        p.add_argument("--capacity", type=float, default=30.0)
        p.add_argument("--srlg", choices=("none", "conduits", "file"),
                       default="none",
                       help="risk groups: 'conduits' bundles the default "
                       "mesh's row/column conduits; 'file' reads the "
                       "srlg section embedded in --topology")

    serve = sub.add_parser(
        "serve", help="run the online admission-control server"
    )
    _topology_options(serve)
    _endpoint_options(serve)
    serve.add_argument("--scheme", choices=SCHEME_CHOICES, default="P-LSR")
    serve.add_argument("--snapshot-db", action="store_true",
                       help="route from periodically refreshed snapshots "
                       "instead of live link state")
    serve.add_argument("--manifest", default=None, metavar="PATH",
                       help="write a final metrics manifest JSON on "
                       "shutdown")
    serve.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="collect request/batch spans and write "
                       "server_trace.json/.ndjson into DIR on shutdown")
    serve.add_argument("--workers", type=int, default=0,
                       help="admission-shard processes (0 = classic "
                       "single-process server)")
    serve.add_argument("--cluster-batch", type=int, default=32,
                       help="commits per replicated link-state epoch")
    serve.add_argument("--cluster-lookahead", type=int, default=2,
                       help="epochs of planning pipeline depth")
    serve.add_argument("--cluster-dir", default=None, metavar="DIR",
                       help="write per-shard metrics manifests into DIR "
                       "on drain")

    cluster = sub.add_parser(
        "cluster",
        help="run the cluster differential oracle campaign",
    )
    cluster.add_argument("--workers", type=int, default=2)
    cluster.add_argument("--scheme", choices=SCHEME_CHOICES, default="D-LSR")
    cluster.add_argument("--rows", type=int, default=6, help="mesh rows")
    cluster.add_argument("--cols", type=int, default=6, help="mesh cols")
    cluster.add_argument("--capacity", type=float, default=8.0)
    cluster.add_argument("--rate", type=float, default=40.0,
                         help="Poisson arrival rate (requests per "
                         "virtual second)")
    cluster.add_argument("--duration", type=float, default=15.0,
                         help="virtual seconds of load")
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument("--batch", type=int, default=32,
                         help="commits per replicated epoch")
    cluster.add_argument("--lookahead", type=int, default=2,
                         help="epochs of planning pipeline depth")
    cluster.add_argument("--no-kill", action="store_true",
                         help="skip the mid-load SIGKILL of one shard")
    cluster.add_argument("--out",
                         default="benchmarks/results/cluster_oracle.json",
                         metavar="PATH",
                         help="archive the oracle report JSON here")

    load = sub.add_parser(
        "loadtest", help="drive a running server with deterministic load"
    )
    _endpoint_options(load)
    load.add_argument("--rate", type=_positive_float, default=40.0,
                      help="mean arrival rate (requests per virtual "
                      "second)")
    load.add_argument("--duration", type=_positive_float, default=60.0,
                      help="virtual seconds of load")
    load.add_argument("--hold-min", type=_positive_float, default=2.0,
                      help="minimum connection hold time (virtual s)")
    load.add_argument("--hold-max", type=_positive_float, default=6.0,
                      help="maximum connection hold time (virtual s)")
    load.add_argument("--bw", type=_positive_float, default=1.0)
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--workload", choices=("poisson", "production"),
                      default="poisson",
                      help="'production' drives MMPP bursts and "
                      "drifting hot-spot endpoints (sojourns/epochs "
                      "scaled to --duration)")
    load.add_argument("--time-scale", type=float, default=0.0,
                      help="wall seconds per virtual second "
                      "(0 = replay as fast as the pipe allows)")
    load.add_argument("--max-inflight", type=_positive_int, default=64,
                      help="pipelined requests kept outstanding")
    load.add_argument("--plan", default=None, metavar="PATH",
                      help="fault-plan JSON mixing link flaps/bursts "
                      "into the load")
    load.add_argument("--report", default=None, metavar="PATH",
                      help="write the load report as JSON here")
    load.add_argument("--min-rps", type=float, default=None,
                      help="fail unless sustained requests/second "
                      "reaches this")
    load.add_argument("--verify", action="store_true",
                      help="replay the same timeline on an in-process "
                      "twin service and compare decisions")
    _topology_options(load)
    load.add_argument("--scheme", choices=SCHEME_CHOICES, default="P-LSR",
                      help="twin scheme for --verify (must match the "
                      "server)")
    load.add_argument("--tolerance", type=float, default=0.005,
                      help="acceptance-ratio tolerance for --verify")

    soak = sub.add_parser(
        "soak",
        help="long-horizon churn soak: stream a production trace "
        "(MMPP x hot-spot drift) through one service, with windowed "
        "metrics and peak-RSS accounting",
    )
    soak.add_argument("--topology", default=None, metavar="PATH",
                      help="topology JSON (default: generate a Waxman "
                      "graph from --nodes/--degree/--capacity)")
    soak.add_argument("--nodes", type=_positive_int, default=500)
    soak.add_argument("--degree", type=_positive_float, default=4.0,
                      help="Waxman average degree target")
    soak.add_argument("--capacity", type=_positive_float, default=40.0)
    soak.add_argument("--scheme", choices=SCHEME_CHOICES, default="P-LSR")
    soak.add_argument("--admissions", type=_positive_int, default=100_000,
                      help="admission attempts to sustain")
    soak.add_argument("--rate", type=_positive_float, default=50.0,
                      help="long-run mean arrival rate (connections "
                      "per simulated second)")
    soak.add_argument("--hold-min", type=_positive_float, default=20.0,
                      help="minimum holding time, simulated seconds "
                      "(short holds = high churn)")
    soak.add_argument("--hold-max", type=_positive_float, default=60.0,
                      help="maximum holding time, simulated seconds")
    soak.add_argument("--bw", type=_positive_float, default=1.0)
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--window", type=_positive_int, default=10_000,
                      help="admissions per measurement window")
    soak.add_argument("--out", default=None, metavar="PATH",
                      help="write the JSON soak report here")
    soak.add_argument("--rss-limit-mb", type=_positive_float, default=None,
                      help="fail (exit 1) if peak RSS exceeds this")
    soak.add_argument("--quiet", action="store_true",
                      help="suppress per-window progress lines")
    _add_production_knobs(soak)

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_topology(args: argparse.Namespace) -> int:
    if args.kind == "waxman":
        network = waxman_network(
            args.nodes,
            capacity=args.capacity,
            parameters=WaxmanParameters(target_degree=args.degree),
            rng=random.Random(args.seed),
        )
    elif args.kind == "mesh":
        network = mesh_network(args.rows, args.cols, args.capacity)
    else:
        network = ring_network(args.nodes, args.capacity)
    groups = None
    if args.srlg == "conduits":
        if args.kind != "mesh":
            print("--srlg conduits needs --kind mesh", file=sys.stderr)
            return 2
        groups = mesh_conduit_groups(network, args.rows, args.cols)
    elif args.srlg == "proximity":
        if args.kind != "waxman":
            print("--srlg proximity needs --kind waxman (geometric "
                  "layout)", file=sys.stderr)
            return 2
        from .topology import proximity_groups

        groups = proximity_groups(network, cell_size=args.srlg_cell)
    save_network(network, args.output, risk_groups=groups)
    print(
        "wrote {}: {} nodes, {} links, average degree {:.2f}{}".format(
            args.output,
            network.num_nodes,
            network.num_links,
            network.average_degree(),
            "" if groups is None else
            ", {} risk groups (max size {})".format(
                groups.num_groups, groups.max_group_size),
        )
    )
    return 0


def _production_trace_config(args: argparse.Namespace, num_nodes: int):
    """Build a ProductionTraceConfig from the shared CLI knobs."""
    from .loadmodel import (
        DriftParameters,
        MMPPParameters,
        ProductionTraceConfig,
    )
    from .simulation.arrivals import HoldingTimeDistribution

    return ProductionTraceConfig(
        num_nodes=num_nodes,
        mmpp=MMPPParameters.bursty(
            args.rate,
            burst_factor=args.burst_factor,
            calm_mean=args.calm_mean,
            burst_mean=args.burst_mean,
        ),
        drift=DriftParameters(
            hot_count=args.hot_count,
            hot_fraction=args.hot_fraction,
            epoch_seconds=args.drift_epoch,
            migrate=args.drift_migrate,
        ),
        holding=HoldingTimeDistribution(args.hold_min, args.hold_max),
        bw_req=args.bw,
        seed=args.seed,
    )


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .simulation.arrivals import HoldingTimeDistribution

    if args.workload == "production":
        from .loadmodel import generate_production_scenario

        if args.hot_count >= args.nodes:
            print(
                "repro scenario: --hot-count must be below --nodes",
                file=sys.stderr,
            )
            return 2
        scenario = generate_production_scenario(
            _production_trace_config(args, args.nodes),
            duration=args.duration,
        )
    else:
        scenario = generate_scenario(
            num_nodes=args.nodes,
            arrival_rate=args.rate,
            duration=args.duration,
            bw_req=args.bw,
            pattern=args.pattern,
            holding=HoldingTimeDistribution(args.hold_min, args.hold_max),
            seed=args.seed,
        )
    scenario.save(args.output)
    print(
        "wrote {}: {} requests over {:.0f}s (empirical rate {:.3f}/s)".format(
            args.output,
            scenario.num_requests,
            scenario.duration,
            scenario.arrival_rate,
        )
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    network = load_network(args.topology)
    scenario = Scenario.load(args.scenario)
    scheme = make_scheme(args.scheme)
    if args.num_backups > 1:
        if not hasattr(scheme, "num_backups"):
            print("scheme {} does not support multiple backups".format(
                args.scheme), file=sys.stderr)
            return 2
        scheme.num_backups = args.num_backups
    service = DRTPService(
        network, scheme, require_backup=args.scheme != "no-backup"
    )
    oracle = None
    if args.oracle:
        from .testing import DifferentialOracle

        oracle = DifferentialOracle(service)
        service = oracle
    ft = FaultToleranceObserver()
    spare = SpareShareObserver()
    warmup = args.warmup if args.warmup is not None else scenario.duration / 2
    result = ScenarioSimulator(
        service, scenario, warmup=warmup, snapshot_count=args.snapshots
    ).run(observers=(ft, spare))
    rows = [
        ("scheme", result.scheme),
        ("requests", result.requests),
        ("accepted", result.accepted),
        ("acceptance ratio", "{:.4f}".format(result.acceptance_ratio)),
        ("mean active connections",
         "{:.1f}".format(result.mean_active_connections)),
        ("fault tolerance P_act-bk", "{:.4f}".format(ft.stats.p_act_bk)),
        ("control messages / request",
         "{:.1f}".format(result.control_messages / max(1, result.requests))),
        ("spare share of committed bw",
         "{:.1%}".format(spare.mean_spare_fraction)),
    ]
    for reason, count in sorted(result.rejected.items()):
        rows.append(("rejected: {}".format(reason), count))
    if oracle is not None:
        rows.append(("oracle operations", oracle.operations))
        rows.append(("oracle checks", oracle.checks))
        rows.append(("oracle divergences", 0))
    print(format_table(("metric", "value"), rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .observability import (
        TraceCollector,
        write_chrome_trace,
        write_ndjson,
    )

    network = load_network(args.topology)
    scenario = Scenario.load(args.scenario)
    scheme = make_scheme(args.scheme)
    # detail=True: the debugging CLI affords the cost decompositions
    # (conflict/q_links per backup search) production tracing skips.
    collector = TraceCollector(max_spans=args.max_spans, detail=True)
    service = DRTPService(
        network, scheme,
        require_backup=args.scheme != "no-backup",
        trace=collector,
    )
    warmup = args.warmup if args.warmup is not None else scenario.duration / 2
    result = ScenarioSimulator(service, scenario, warmup=warmup).run()

    label = "drtp-{}".format(scheme.name)
    events = write_chrome_trace(args.out, collector, label=label)
    counts = collector.counts()
    rows = [(name, counts[name]) for name in sorted(counts)]
    rows.append(("spans total", len(collector)))
    rows.append(("spans dropped", collector.dropped))
    print(format_table(("span", "count"), rows))
    print("replayed {} requests, accepted {} (ratio {:.4f})".format(
        result.requests, result.accepted, result.acceptance_ratio,
    ))
    print("wrote {} trace events to {}".format(events, args.out))
    if args.ndjson:
        spans = write_ndjson(args.ndjson, collector, label=label)
        print("wrote {} span records to {}".format(spans, args.ndjson))
    if args.rejections > 0:
        rejected = [
            span for span in collector.spans("service.admit")
            if span.tags.get("accepted") is False
        ]
        if rejected:
            print("\n{} rejected admission(s); first {}:".format(
                len(rejected), min(args.rejections, len(rejected)),
            ))
            for span in rejected[:args.rejections]:
                print("  request {} {}->{} bw {}: {}".format(
                    span.tags.get("request"), span.tags.get("source"),
                    span.tags.get("destination"), span.tags.get("bw"),
                    span.tags.get("reason"),
                ))
        # Cache effectiveness behind the rejections: warm hits served
        # a stored candidate without searching; cold misses ran the
        # full backup search (docs/performance.md reads this digest).
        searches = collector.spans("route.backup_search")
        warm_hits = sum(
            1 for span in searches if span.tags.get("warm") is True
        )
        cold_misses = sum(
            1 for span in searches if span.tags.get("warm") is False
        )
        if warm_hits or cold_misses:
            print(
                "backup searches: {} warm hit(s), {} cold miss(es) "
                "({} total)".format(warm_hits, cold_misses, len(searches))
            )
    print("open the trace in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_assess(args: argparse.Namespace) -> int:
    network = load_network(args.topology)
    service = DRTPService(network, make_scheme(args.scheme))
    rng = random.Random(args.seed)
    established = 0
    attempts = 0
    while established < args.connections and attempts < args.connections * 10:
        a = rng.randrange(network.num_nodes)
        b = rng.randrange(network.num_nodes)
        attempts += 1
        if a != b and service.request(a, b, args.bw).accepted:
            established += 1
    print("{} DR-connections established".format(established))

    total_attempts = total_success = 0
    worst = None
    if args.nodes:
        sweep = [("node", n, service.assess_node_failure(n))
                 for n in network.nodes()]
    else:
        sweep = [("link", l, service.assess_link_failure(l))
                 for l in service.links_carrying_primaries()]
    for _kind, _ident, impact in sweep:
        total_attempts += impact.affected
        total_success += impact.activated
        if worst is None or impact.failed > worst[2].failed:
            worst = (_kind, _ident, impact)
    p = total_success / total_attempts if total_attempts else 1.0
    print(
        "failure sweep: {} recovery attempts, {} succeed -> "
        "P_act-bk = {:.4f}".format(total_attempts, total_success, p)
    )
    if worst is not None and worst[2].failed:
        print(
            "worst case: {} {} strands {} of {} ({})".format(
                worst[0], worst[1], worst[2].failed, worst[2].affected,
                worst[2].reasons(),
            )
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .faults import CampaignConfig, FaultPlan, run_campaign
    from .simulation import Tracer

    if args.plan is not None:
        plan = FaultPlan.load(args.plan)
    else:
        plan = FaultPlan.everything(intensity=args.intensity)
    config = CampaignConfig(
        rows=args.rows,
        cols=args.cols,
        capacity=args.capacity,
        scheme=args.scheme,
        arrival_rate=args.rate,
        duration=args.duration,
        seed=args.seed,
        backup_retry_interval=args.retry_interval,
        srlg=args.srlg,
    )
    tracer = Tracer() if args.trace else None
    report = run_campaign(plan, config, tracer=tracer)
    if args.verify:
        rerun = run_campaign(plan, config)
        if rerun.to_dict() != report.to_dict():
            print("NOT REPRODUCIBLE: two runs of seed {} differ".format(
                args.seed), file=sys.stderr)
            return 1
        print("reproducible: two runs of seed {} are identical".format(
            args.seed))
    print(report.format())
    if args.log != "none":
        from pathlib import Path

        if args.log is not None:
            log_path = Path(args.log)
        else:
            # Default under benchmarks/results/ (gitignored) so ad-hoc
            # campaign logs stop littering the repository root.
            log_path = Path("benchmarks") / "results" / (
                "chaos_{}_seed{}.log".format(args.scheme, args.seed)
            )
        log_path.parent.mkdir(parents=True, exist_ok=True)
        log_path.write_text(report.format() + "\n")
        print("wrote campaign log to {}".format(log_path))
    if args.trace:
        tracer.write_jsonl(args.trace)
        print("wrote {} trace events to {}".format(len(tracer), args.trace))
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print("wrote report to {}".format(args.report))
    return 0


def _serving_network(args: argparse.Namespace):
    """The topology named by --topology, or the --rows x --cols mesh."""
    if args.topology is not None:
        return load_network(args.topology)
    return mesh_network(args.rows, args.cols, args.capacity)


def _serving_network_with_groups(args: argparse.Namespace):
    """Resolve ``(network, risk_groups)`` for serve/loadtest: the
    --srlg flag selects conduit bundling on the default mesh or the
    srlg section embedded in the --topology JSON."""
    if args.srlg == "file":
        if args.topology is None:
            raise SystemExit(
                "--srlg file needs --topology (a JSON with an embedded "
                "srlg section, written by save_network(risk_groups=...))"
            )
        network, groups = load_network_with_groups(args.topology)
        if groups is None:
            raise SystemExit(
                "{} has no srlg section".format(args.topology)
            )
        return network, groups
    network = _serving_network(args)
    if args.srlg == "conduits":
        if args.topology is not None:
            raise SystemExit(
                "--srlg conduits bundles the default mesh's conduits; "
                "with --topology, embed groups and use --srlg file"
            )
        return network, mesh_conduit_groups(network, args.rows, args.cols)
    return network, None


def _endpoint_kwargs(args: argparse.Namespace) -> dict:
    if args.socket is not None:
        return {"socket_path": args.socket}
    return {"host": args.host or "127.0.0.1", "port": args.port}


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .metrics import ServiceMetrics
    from .server import ControlPlaneServer

    if args.workers > 0 and args.snapshot_db:
        print("repro serve: --workers needs the live link-state database "
              "(drop --snapshot-db)", file=sys.stderr)
        return 2
    network, risk_groups = _serving_network_with_groups(args)
    scheme = make_scheme(args.scheme)
    metrics = ServiceMetrics()
    service = DRTPService(
        network, scheme,
        live_database=not args.snapshot_db,
        metrics=metrics,
        risk_groups=risk_groups,
    )

    def _build_server() -> ControlPlaneServer:
        if args.workers > 0:
            from .cluster import ClusterControlPlaneServer

            return ClusterControlPlaneServer(
                service, metrics,
                scheme_name=args.scheme,
                workers=args.workers,
                batch=args.cluster_batch,
                lookahead=args.cluster_lookahead,
                risk_groups=risk_groups,
                cluster_dir=args.cluster_dir,
                manifest_path=args.manifest,
                trace_dir=args.trace_dir,
                **_endpoint_kwargs(args),
            )
        return ControlPlaneServer(
            service, metrics,
            manifest_path=args.manifest,
            trace_dir=args.trace_dir,
            **_endpoint_kwargs(args),
        )

    async def _run() -> ControlPlaneServer:
        server = _build_server()
        await server.start()
        # Readiness line for scripts that wait on our stdout.
        print(
            "serving {} on {} ({} nodes, {} links{})".format(
                scheme.name, server.endpoint,
                network.num_nodes, network.num_links,
                ", {} workers".format(args.workers)
                if args.workers > 0 else "",
            ),
            flush=True,
        )
        await server.serve_until_shutdown()
        return server

    try:
        server = asyncio.run(_run())
    except ValueError as exc:
        # e.g. a scheme the cluster refuses to shard ("random")
        print("repro serve: {}".format(exc), file=sys.stderr)
        return 2
    stats = server.stats
    print(
        "drained: {} requests ({} protocol errors) over {} connections, "
        "acceptance ratio {:.4f}".format(
            stats.requests_total, stats.protocol_errors,
            stats.connections_total, service.counters.acceptance_ratio,
        )
    )
    if args.manifest:
        print("wrote manifest to {}".format(args.manifest))
    if args.trace_dir and server.trace is not None:
        print("wrote {} spans ({} dropped) to {}".format(
            len(server.trace), server.trace.dropped, args.trace_dir,
        ))
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from .faults import FaultPlan
    from .server import (
        LoadGenConfig,
        LoadGenerator,
        build_timeline,
        fetch_status,
        run_sequential_reference,
    )

    plan = FaultPlan.load(args.plan) if args.plan else None
    config = LoadGenConfig(
        arrival_rate=args.rate,
        duration=args.duration,
        hold_min=args.hold_min,
        hold_max=args.hold_max,
        bw_req=args.bw,
        master_seed=args.seed,
        fault_plan=plan,
        workload=args.workload,
    )
    endpoint = _endpoint_kwargs(args)
    if "port" in endpoint and endpoint["port"] == 0:
        print("repro loadtest: --port is required for TCP targets",
              file=sys.stderr)
        return 2

    async def _run():
        status = await fetch_status(**endpoint)
        needs_topology = args.verify or (
            plan is not None
            and (
                (plan.bursts.enabled and plan.bursts.correlated)
                or plan.regional.enabled
            )
        )
        network = risk_groups = None
        if needs_topology or args.srlg != "none":
            network, risk_groups = _serving_network_with_groups(args)
        if network is not None and (
            network.num_nodes != status["nodes"]
            or network.num_links != status["links"]
        ):
            raise SystemExit(
                "loadtest topology ({} nodes, {} links) does not match "
                "the server's ({} nodes, {} links)".format(
                    network.num_nodes, network.num_links,
                    status["nodes"], status["links"],
                )
            )
        timeline = build_timeline(
            config, status["nodes"], status["links"],
            network=network, risk_groups=risk_groups,
        )
        generator = LoadGenerator(
            timeline,
            time_scale=args.time_scale,
            max_inflight=args.max_inflight,
            **endpoint,
        )
        report = await generator.run()
        return status, network, risk_groups, timeline, report

    status, network, risk_groups, timeline, report = asyncio.run(_run())

    rows = [
        ("server scheme", status.get("scheme", "?")),
        ("timeline events", report.events),
        ("responses", report.responses),
        ("admits", report.admits),
        ("accepted", report.accepted),
        ("acceptance ratio", "{:.4f}".format(report.acceptance_ratio)),
        ("releases acknowledged", report.released),
        ("link failures / repairs",
         "{} / {}".format(report.fail_links, report.repair_links)),
        ("protocol errors", report.protocol_error_total),
        ("wall seconds", "{:.2f}".format(report.wall_seconds)),
        ("requests / second", "{:.0f}".format(report.requests_per_second)),
    ]
    print(format_table(("metric", "value"), rows))

    final_cluster = (report.final_status or {}).get("cluster")
    if final_cluster is not None:
        # Per-shard breakdown from the server's closing status answer.
        print("cluster: {} workers, epoch {} ({} requeues, {} authority "
              "replans)".format(
                  final_cluster["workers"], final_cluster["epoch"],
                  final_cluster["requeues"], final_cluster["replans"]))
        shard_rows = [
            (shard["shard"], shard["generation"],
             "yes" if shard["alive"] else "no",
             shard["planned"], shard["requeued"], shard["resyncs"],
             shard["restarts"])
            for shard in final_cluster["shards"]
        ]
        print(format_table(
            ("shard", "gen", "alive", "admissions", "requeues",
             "resyncs", "restarts"),
            shard_rows,
        ))

    failures = 0
    if report.protocol_error_total:
        print("FAIL: {} protocol errors: {}".format(
            report.protocol_error_total, report.protocol_errors,
        ), file=sys.stderr)
        failures += 1
    if args.min_rps is not None and report.requests_per_second < args.min_rps:
        print("FAIL: sustained {:.0f} req/s < required {:.0f}".format(
            report.requests_per_second, args.min_rps), file=sys.stderr)
        failures += 1
    cluster_status = status.get("cluster")
    if args.verify:
        # The twin must see the same risk groups as the server: an
        # SRLG-aware server routes (and therefore decides) differently.
        twin = DRTPService(
            network, make_scheme(args.scheme),
            live_database=status.get("live_database", True),
            risk_groups=risk_groups,
        )
        if cluster_status is not None:
            # A sharded server plans against replicated epochs; replay
            # the same epoch discipline (batch/lookahead advertised in
            # the status op) — the decision trace must match exactly,
            # whatever the worker count or kill schedule was.
            from .cluster import run_cluster_reference

            reference = run_cluster_reference(
                network, args.scheme, timeline,
                batch=cluster_status["batch"],
                lookahead=cluster_status["lookahead"],
                service=twin,
            )
        else:
            reference = run_sequential_reference(twin, timeline)
        delta = abs(
            reference["acceptance_ratio"] - report.acceptance_ratio
        )
        exact = report.decisions == reference["decisions"]
        print("reference acceptance ratio {:.4f} (delta {:.4f}, "
              "decisions {})".format(
                  reference["acceptance_ratio"], delta,
                  "identical" if exact else "differ"))
        if delta > args.tolerance:
            print("FAIL: acceptance ratio deviates from the sequential "
                  "reference by {:.4f} > {:.4f}".format(
                      delta, args.tolerance), file=sys.stderr)
            failures += 1
        if cluster_status is not None and not exact:
            print("FAIL: decision trace differs from the cluster's "
                  "sequential epoch replay", file=sys.stderr)
            failures += 1
        elif status.get("live_database", True) and not exact:
            print("FAIL: decision trace differs from the sequential "
                  "reference despite a live link-state database",
                  file=sys.stderr)
            failures += 1
    if args.report:
        payload = report.to_dict()
        payload["config"] = {
            "arrival_rate": args.rate,
            "duration": args.duration,
            "hold_min": args.hold_min,
            "hold_max": args.hold_max,
            "bw_req": args.bw,
            "seed": args.seed,
            "time_scale": args.time_scale,
            "max_inflight": args.max_inflight,
            "fault_plan": plan.name if plan else None,
        }
        if final_cluster is not None:
            payload["cluster"] = final_cluster
        with open(args.report, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print("wrote load report to {}".format(args.report))
    return 1 if failures else 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Run the cluster differential oracle and archive its report."""
    from .cluster import ClusterOracleDivergence, run_cluster_oracle

    try:
        result = run_cluster_oracle(
            workers=args.workers,
            scheme=args.scheme,
            rows=args.rows,
            cols=args.cols,
            capacity=args.capacity,
            arrival_rate=args.rate,
            duration=args.duration,
            seed=args.seed,
            batch=args.batch,
            lookahead=args.lookahead,
            kill_shard=not args.no_kill,
            out_path=args.out,
        )
    except ClusterOracleDivergence as exc:
        print("FAIL: {}".format(exc), file=sys.stderr)
        print("report archived to {}".format(args.out), file=sys.stderr)
        return 1
    print(
        "cluster oracle: {} ops ({} admits, {:.4f} accepted) over {} "
        "workers — zero divergences".format(
            result["ops"], result["admits"], result["acceptance_ratio"],
            args.workers,
        )
    )
    kill = result["kill"]
    if kill["requested"]:
        print(
            "killed pid {} mid-load: {} restart(s), {} requeued plans, "
            "{} stale replies dropped".format(
                kill["pid"], kill["worker_restarts"], kill["requeues"],
                kill["stale_results"],
            )
        )
    print("report archived to {}".format(args.out))
    return 0


def _parse_list(raw: str, convert) -> tuple:
    return tuple(convert(item) for item in raw.split(",") if item.strip())


def _campaign_spec(args: argparse.Namespace):
    from .campaign import CampaignSpec

    return CampaignSpec(
        scale=args.scale,
        degrees=_parse_list(args.degrees, int),
        patterns=_parse_list(args.patterns, str),
        lambdas=(
            None if args.lambdas is None
            else _parse_list(args.lambdas, float)
        ),
        schemes=_parse_list(args.schemes, str),
        master_seed=args.seed,
    )


def _report_campaign(result) -> int:
    if result.complete:
        print("campaign complete: {} cells ({} resumed) in {:.1f}s".format(
            result.manifest["cells_total"], result.resumed_cells,
            result.wall_clock_seconds,
        ))
        for path in result.outputs:
            print("wrote {}".format(path))
    else:
        print("campaign interrupted: {}/{} cells checkpointed; resume "
              "with: repro campaign resume --dir {}".format(
                  result.manifest["cells_done"],
                  result.manifest["cells_total"], result.campaign_dir,
              ))
    print("manifest: {}".format(
        result.campaign_dir / "campaign_manifest.json"
    ))
    return 0


def _campaign_trace(args: argparse.Namespace):
    """A collector when ``--trace-dir`` was given, else None."""
    if getattr(args, "trace_dir", None) is None:
        return None
    from .observability import TraceCollector

    return TraceCollector()


def _write_campaign_trace(trace, args: argparse.Namespace) -> None:
    if trace is None:
        return
    from pathlib import Path

    from .observability import write_chrome_trace, write_ndjson

    directory = Path(args.trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    chrome = directory / "campaign_trace.json"
    ndjson = directory / "campaign_trace.ndjson"
    write_chrome_trace(chrome, trace, label="drtp-campaign")
    write_ndjson(ndjson, trace, label="drtp-campaign")
    print("wrote {} spans ({} dropped) to {} and {}".format(
        len(trace), trace.dropped, chrome, ndjson,
    ))


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaign import run_campaign_jobs

    trace = _campaign_trace(args)
    status = _report_campaign(run_campaign_jobs(
        _campaign_spec(args),
        args.dir,
        jobs=args.jobs,
        resume=args.resume,
        stop_after_cells=args.stop_after,
        trace=trace,
    ))
    _write_campaign_trace(trace, args)
    return status


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    from .campaign import resume_campaign

    trace = _campaign_trace(args)
    status = _report_campaign(
        resume_campaign(args.dir, jobs=args.jobs, trace=trace)
    )
    _write_campaign_trace(trace, args)
    return status


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    import json

    from .campaign import campaign_status

    status = campaign_status(args.dir)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    rows = [
        ("status", status.get("status", "?")),
        ("cells", "{} / {}".format(
            status.get("cells_done", "?"), status.get("cells_total", "?")
        )),
    ]
    progress = status.get("progress") or {}
    if progress:
        rows.append(("throughput (cells/s)", "{:.3f}".format(
            progress.get("throughput_cells_per_second") or 0.0
        )))
        eta = progress.get("eta_seconds")
        rows.append(("ETA", "{:.0f}s".format(eta) if eta else "-"))
        rows.append(("retries", progress.get("retries", 0)))
        workers = progress.get("workers") or {}
        if workers:
            rows.append(("workers", " ".join(
                "{}={}".format(name, state)
                for name, state in sorted(workers.items())
            )))
    if status.get("resumed_cells"):
        rows.append(("resumed cells", status["resumed_cells"]))
    merged = status.get("merged") or {}
    for scheme, stats in (merged.get("observer_stats") or {}).items():
        rows.append(("merged P_act-bk [{}]".format(scheme),
                     "{:.4f}".format(stats["p_act_bk"])))
    print(format_table(("field", "value"), rows))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.campaign_command in ("run", "resume", "status"):
        from .campaign import CampaignError

        handler = {
            "run": _cmd_campaign_run,
            "resume": _cmd_campaign_resume,
            "status": _cmd_campaign_status,
        }[args.campaign_command]
        try:
            return handler(args)
        except CampaignError as exc:
            print("repro campaign: {}".format(exc), file=sys.stderr)
            return 1
    # Legacy alias: the full table/figure reproduction.
    campaign_argv: List[str] = ["--scale", args.scale,
                                "--seed", str(args.seed)]
    if args.jobs != 1:
        campaign_argv += ["--jobs", str(args.jobs)]
    if args.skip_ablations:
        campaign_argv.append("--skip-ablations")
    campaign_main(campaign_argv)
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    import json

    from .loadmodel import ProductionTraceGenerator, SoakEngine

    if args.topology is not None:
        network = load_network(args.topology)
    else:
        network = waxman_network(
            args.nodes,
            capacity=args.capacity,
            parameters=WaxmanParameters(target_degree=args.degree),
            rng=random.Random(args.seed),
        )
    if args.hot_count >= network.num_nodes:
        print(
            "repro soak: --hot-count must be below the node count",
            file=sys.stderr,
        )
        return 2
    service = DRTPService(
        network,
        make_scheme(args.scheme),
        require_backup=args.scheme != "no-backup",
    )
    config = _production_trace_config(args, network.num_nodes)
    print(
        "soak: {} nodes, {} links, scheme {}, {} admissions "
        "(window {}), offered load ~{:.0f} concurrent".format(
            network.num_nodes, network.num_links, args.scheme,
            args.admissions, args.window,
            config.expected_offered_load(),
        )
    )

    def progress(stats) -> None:
        if args.quiet:
            return
        print(
            "window {:>4}: t={:>9.1f}s active={:>6} accept={:.3f} "
            "{:>7.0f} adm/s rss={:.1f} MiB".format(
                stats.index, stats.sim_time, stats.active,
                stats.accepted / max(1, stats.admissions),
                stats.admissions_per_second,
                stats.rss_bytes / (1024.0 * 1024.0),
            ),
            flush=True,
        )

    engine = SoakEngine(
        service,
        ProductionTraceGenerator(config),
        window=args.window,
        progress=progress,
    )
    report = engine.run(args.admissions)
    payload = report.to_dict()
    payload["scheme"] = args.scheme
    payload["nodes"] = network.num_nodes
    payload["links"] = network.num_links
    payload["seed"] = args.seed
    rows = [
        ("admissions", report.admissions),
        ("accepted", report.accepted),
        ("acceptance ratio", "{:.4f}".format(report.acceptance_ratio)),
        ("releases", report.releases),
        ("final active", report.final_active),
        ("simulated time", "{:.0f}s".format(report.sim_time)),
        ("wall time", "{:.1f}s".format(report.wall_seconds)),
        ("admissions/s", "{:.0f}".format(report.admissions_per_second)),
        ("peak RSS", "{:.1f} MiB".format(
            report.peak_rss_bytes / (1024.0 * 1024.0))),
        ("slab slots (high water)", report.slab.get("high_water", 0)),
        ("slab reuses", report.slab.get("reused_slots", 0)),
        ("decision checksum", report.decision_checksum[:16]),
    ]
    print(format_table(("metric", "value"), rows))
    if args.out is not None:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote {}".format(args.out))
    if args.rss_limit_mb is not None:
        limit = args.rss_limit_mb * 1024 * 1024
        if report.peak_rss_bytes > limit:
            print(
                "repro soak: peak RSS {:.1f} MiB exceeds the {:.1f} MiB "
                "ceiling".format(
                    report.peak_rss_bytes / (1024.0 * 1024.0),
                    args.rss_limit_mb,
                ),
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: parse ``argv`` (default ``sys.argv[1:]``),
    dispatch to the subcommand, return the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        # No subcommand: print the full help, exit 2 (usage error).
        parser.print_help(sys.stderr)
        return 2
    if args.command == "topology":
        return _cmd_topology(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "assess":
        return _cmd_assess(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    if args.command == "soak":
        return _cmd_soak(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    raise AssertionError("unhandled command {!r}".format(args.command))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
