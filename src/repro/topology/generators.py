"""Auxiliary topology generators.

These are not used by the paper's headline experiments (which run on
Waxman graphs) but are exercised by the test suite, the examples and
the ablation benchmarks: rings and random-regular graphs give known
path diversity, which makes routing-scheme behaviour easy to reason
about and assert on.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from .graph import Network, TopologyError


def ring_network(num_nodes: int, capacity: float) -> Network:
    """A cycle of ``num_nodes`` nodes; every node pair has exactly two
    disjoint paths, the minimum useful diversity for primary/backup."""
    if num_nodes < 3:
        raise TopologyError("a ring needs at least 3 nodes")
    net = Network(num_nodes)
    for i in range(num_nodes):
        net.add_edge(i, (i + 1) % num_nodes, capacity)
    return net.freeze()


def line_network(num_nodes: int, capacity: float) -> Network:
    """A path graph — a topology with *no* backup diversity, used by
    tests that assert graceful degradation when no disjoint route
    exists."""
    if num_nodes < 2:
        raise TopologyError("a line needs at least 2 nodes")
    net = Network(num_nodes)
    for i in range(num_nodes - 1):
        net.add_edge(i, i + 1, capacity)
    return net.freeze()


def complete_network(num_nodes: int, capacity: float) -> Network:
    """A clique; maximal path diversity."""
    if num_nodes < 2:
        raise TopologyError("a complete network needs at least 2 nodes")
    net = Network(num_nodes)
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            net.add_edge(i, j, capacity)
    return net.freeze()


def star_network(num_nodes: int, capacity: float) -> Network:
    """Hub-and-spoke with node 0 as the hub; every route crosses the
    hub, so backups always conflict — a worst case for multiplexing."""
    if num_nodes < 3:
        raise TopologyError("a star needs at least 3 nodes")
    net = Network(num_nodes)
    for i in range(1, num_nodes):
        net.add_edge(0, i, capacity)
    return net.freeze()


def random_regular_network(
    num_nodes: int,
    degree: int,
    capacity: float,
    rng: Optional[random.Random] = None,
    max_attempts: int = 500,
) -> Network:
    """A connected random graph in which every node has exactly
    ``degree`` neighbors (pairing-model construction with retries).

    Useful for ablations that need the paper's average-degree knob with
    zero degree variance.
    """
    if degree < 2:
        raise TopologyError("degree must be >= 2 for connectivity")
    if degree >= num_nodes:
        raise TopologyError("degree must be < num_nodes")
    if (num_nodes * degree) % 2 != 0:
        raise TopologyError("num_nodes * degree must be even")
    rng = rng or random.Random()
    for _ in range(max_attempts):
        edges = _pairing_model(num_nodes, degree, rng)
        if edges is None:
            continue
        net = Network(num_nodes)
        for u, v in sorted(edges):
            net.add_edge(u, v, capacity)
        net.freeze()
        if net.is_connected():
            return net
    raise TopologyError(
        "failed to build a connected {}-regular graph on {} nodes".format(
            degree, num_nodes
        )
    )


def _pairing_model(
    num_nodes: int, degree: int, rng: random.Random
) -> Optional[set]:
    stubs: List[int] = []
    for node in range(num_nodes):
        stubs.extend([node] * degree)
    rng.shuffle(stubs)
    edges = set()
    while stubs:
        u = stubs.pop()
        v = stubs.pop()
        if u == v:
            return None
        key = (min(u, v), max(u, v))
        if key in edges:
            return None
        edges.add(key)
    return edges


def network_from_edges(
    num_nodes: int,
    edges: Sequence[Tuple[int, int]],
    capacity: float,
) -> Network:
    """Build a frozen network from an explicit bidirectional edge list."""
    net = Network(num_nodes)
    for u, v in edges:
        net.add_edge(u, v, capacity)
    return net.freeze()
