"""Topology (de)serialization.

The paper's methodology replays identical scenarios across routing
schemes; to do that across processes (and to archive the exact
evaluation networks next to the results) topologies round-trip through
a small JSON document.  Only bidirectional-pair networks built via
``add_edge`` are supported by the compact ``edges`` form; networks with
stray unidirectional links use the explicit ``links`` form.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .graph import Network, TopologyError

_FORMAT_VERSION = 1


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Serialize a network to a plain JSON-compatible dictionary."""
    links = [
        {"src": link.src, "dst": link.dst, "capacity": link.capacity}
        for link in network.links()
    ]
    return {
        "version": _FORMAT_VERSION,
        "num_nodes": network.num_nodes,
        "links": links,
    }


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Rebuild a frozen network; link ids are preserved exactly."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise TopologyError("unsupported topology format version: {}".format(version))
    try:
        num_nodes = data["num_nodes"]
        links = data["links"]
    except KeyError as exc:
        raise TopologyError("topology document missing key: {}".format(exc))
    net = Network(num_nodes)
    for entry in links:
        net.add_directed_link(entry["src"], entry["dst"], entry["capacity"])
    return net.freeze()


def save_network(network: Network, path: Union[str, Path]) -> None:
    """Write a network as JSON to ``path``."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2))


def load_network(path: Union[str, Path]) -> Network:
    """Read a network previously written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()))
