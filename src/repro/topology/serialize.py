"""Topology (de)serialization.

The paper's methodology replays identical scenarios across routing
schemes; to do that across processes (and to archive the exact
evaluation networks next to the results) topologies round-trip through
a small JSON document.  Only bidirectional-pair networks built via
``add_edge`` are supported by the compact ``edges`` form; networks with
stray unidirectional links use the explicit ``links`` form.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .graph import Network, TopologyError
from .srlg import RiskGroupSet, risk_groups_from_dict, risk_groups_to_dict

_FORMAT_VERSION = 1


def network_to_dict(
    network: Network, risk_groups: Optional[RiskGroupSet] = None
) -> Dict[str, Any]:
    """Serialize a network to a plain JSON-compatible dictionary.

    When ``risk_groups`` is given the SRLG assignment is embedded under
    an optional ``"srlg"`` key; readers that predate risk groups ignore
    unknown keys, so the document stays backward compatible.
    """
    links = [
        {"src": link.src, "dst": link.dst, "capacity": link.capacity}
        for link in network.links()
    ]
    document: Dict[str, Any] = {
        "version": _FORMAT_VERSION,
        "num_nodes": network.num_nodes,
        "links": links,
    }
    if risk_groups is not None:
        if risk_groups.num_links != network.num_links:
            raise TopologyError(
                "risk groups cover {} links but network has {}".format(
                    risk_groups.num_links, network.num_links
                )
            )
        document["srlg"] = risk_groups_to_dict(risk_groups)
    return document


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Rebuild a frozen network; link ids are preserved exactly."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise TopologyError("unsupported topology format version: {}".format(version))
    try:
        num_nodes = data["num_nodes"]
        links = data["links"]
    except KeyError as exc:
        raise TopologyError("topology document missing key: {}".format(exc))
    net = Network(num_nodes)
    for entry in links:
        net.add_directed_link(entry["src"], entry["dst"], entry["capacity"])
    return net.freeze()


def risk_groups_from_document(
    data: Dict[str, Any], network: Network
) -> Optional[RiskGroupSet]:
    """Extract the optional SRLG assignment from a topology document
    (``None`` when the document predates risk groups)."""
    srlg = data.get("srlg")
    if srlg is None:
        return None
    return risk_groups_from_dict(srlg, network)


def save_network(
    network: Network,
    path: Union[str, Path],
    risk_groups: Optional[RiskGroupSet] = None,
) -> None:
    """Write a network (and optionally its SRLGs) as JSON to ``path``."""
    Path(path).write_text(
        json.dumps(network_to_dict(network, risk_groups=risk_groups), indent=2)
    )


def load_network(path: Union[str, Path]) -> Network:
    """Read a network previously written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()))


def load_network_with_groups(
    path: Union[str, Path],
) -> Tuple[Network, Optional[RiskGroupSet]]:
    """Read a network plus its embedded SRLG assignment, if any."""
    data = json.loads(Path(path).read_text())
    network = network_from_dict(data)
    return network, risk_groups_from_document(data, network)
