"""Regular mesh topologies.

Figure 1 of the paper illustrates backup multiplexing "using a simple
3 x 3 mesh network"; :func:`mesh_network` reproduces that substrate
(and arbitrary ``rows x cols`` generalizations).  A hexagonal mesh —
the substrate of the Single-Failure-Immune work the paper cites
([12, 13]) — is provided for the comparison examples.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .graph import Network, TopologyError


def mesh_network(rows: int, cols: int, capacity: float) -> Network:
    """Build a ``rows x cols`` grid; node ``(r, c)`` has id ``r*cols + c``.

    Every horizontal and vertical neighbor pair is joined by a
    bidirectional edge (two unidirectional links), matching the
    paper's Figure 1 substrate.
    """
    if rows < 1 or cols < 1:
        raise TopologyError("mesh needs positive dimensions")
    if rows * cols < 2:
        raise TopologyError("mesh needs at least 2 nodes")
    net = Network(rows * cols)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                net.add_edge(node, node + 1, capacity)
            if r + 1 < rows:
                net.add_edge(node, node + cols, capacity)
    return net.freeze()


def mesh_node(rows: int, cols: int, r: int, c: int) -> int:
    """Map a grid coordinate to its node id (bounds-checked)."""
    if not (0 <= r < rows and 0 <= c < cols):
        raise TopologyError(
            "coordinate ({}, {}) outside {}x{} mesh".format(r, c, rows, cols)
        )
    return r * cols + c


def torus_network(rows: int, cols: int, capacity: float) -> Network:
    """A wrap-around mesh (torus); used by tests for symmetric routing."""
    if rows < 3 or cols < 3:
        raise TopologyError("torus needs dimensions >= 3 to avoid parallel edges")
    net = Network(rows * cols)
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            right = r * cols + (c + 1) % cols
            down = ((r + 1) % rows) * cols + c
            if not net.has_link(node, right):
                net.add_edge(node, right, capacity)
            if not net.has_link(node, down):
                net.add_edge(node, down, capacity)
    return net.freeze()


def hexagonal_mesh_network(dimension: int, capacity: float) -> Network:
    """An H-mesh of the given dimension (HARTS-style hexagonal mesh).

    An H-mesh of dimension ``e`` has ``3e(e-1) + 1`` nodes arranged in
    concentric hexagonal rings; each interior node has degree 6.  This
    is the substrate of the Isolated-Failure-Immune channel work the
    paper compares against ([13]).

    Nodes are generated in axial coordinates ``(q, r)`` with
    ``|q|, |r|, |q + r| < e`` and numbered in row-major order of the
    sorted coordinate list.
    """
    if dimension < 2:
        raise TopologyError("hexagonal mesh dimension must be >= 2")
    coords = [
        (q, r)
        for q in range(-dimension + 1, dimension)
        for r in range(-dimension + 1, dimension)
        if abs(q + r) < dimension
    ]
    coords.sort()
    index: Dict[Tuple[int, int], int] = {qr: i for i, qr in enumerate(coords)}
    net = Network(len(coords))
    neighbor_offsets = ((1, 0), (0, 1), (-1, 1))
    for (q, r), node in index.items():
        for dq, dr in neighbor_offsets:
            other = index.get((q + dq, r + dr))
            if other is not None:
                net.add_edge(node, other, capacity)
    return net.freeze()
