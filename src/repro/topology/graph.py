"""Network topology model.

The paper models a packet-switched network in which every connection
between two nodes consists of **two unidirectional links** (Section 2,
Figure 1).  Bandwidth is reserved per unidirectional link, so a primary
channel from node 3 to node 7 consumes capacity only in the 3->7
direction of each edge it crosses.

This module provides the three foundational types used everywhere else:

``Link``
    A single unidirectional link with an integer identity and a
    bandwidth capacity (the paper's ``total_bw`` for that link).

``Network``
    An immutable-after-build topology: a set of nodes, unidirectional
    links grouped into bidirectional pairs, and adjacency indexes.

``Route``
    A loop-free node path through a ``Network`` together with the link
    identifiers it traverses (the paper's ``LSET`` of a route).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple


class TopologyError(ValueError):
    """Raised when a topology is malformed or an operation is invalid."""


@dataclass(frozen=True)
class Link:
    """One unidirectional link ``src -> dst``.

    Attributes:
        link_id: Dense integer identifier, ``0 .. Network.num_links - 1``.
            APLVs and Conflict Vectors are indexed by this id.
        src: Node the link leaves.
        dst: Node the link enters.
        capacity: Total bandwidth usable for DR-connections on this link
            (the paper's ``total_bw``), in abstract bandwidth units.
    """

    link_id: int
    src: int
    dst: int
    capacity: float

    def endpoints(self) -> Tuple[int, int]:
        """Return ``(src, dst)``."""
        return (self.src, self.dst)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "L{}({}->{})".format(self.link_id, self.src, self.dst)


class Network:
    """A topology of nodes joined by pairs of unidirectional links.

    Build a network either edge-by-edge::

        net = Network(num_nodes=4)
        net.add_edge(0, 1, capacity=30.0)
        net.add_edge(1, 2, capacity=30.0)
        net.freeze()

    or from one of the generators in :mod:`repro.topology`.

    After :meth:`freeze` the topology is read-only; attempting to add
    edges raises :class:`TopologyError`.  All the routing and
    simulation machinery requires a frozen network so that link ids are
    stable (APLVs are vectors indexed by link id).
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise TopologyError("num_nodes must be positive, got {}".format(num_nodes))
        self._num_nodes = num_nodes
        self._links: List[Link] = []
        self._out: List[List[int]] = [[] for _ in range(num_nodes)]
        self._in: List[List[int]] = [[] for _ in range(num_nodes)]
        self._by_endpoints: Dict[Tuple[int, int], int] = {}
        self._frozen = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, capacity: float) -> Tuple[int, int]:
        """Add a bidirectional edge as two unidirectional links.

        Returns the pair of new link ids ``(id_uv, id_vu)``.
        """
        if self._frozen:
            raise TopologyError("cannot add edges to a frozen network")
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError("self-loop on node {} is not allowed".format(u))
        if (u, v) in self._by_endpoints:
            raise TopologyError("edge {}-{} already exists".format(u, v))
        if capacity <= 0:
            raise TopologyError("capacity must be positive, got {}".format(capacity))
        id_uv = self._add_link(u, v, capacity)
        id_vu = self._add_link(v, u, capacity)
        return (id_uv, id_vu)

    def add_directed_link(self, u: int, v: int, capacity: float) -> int:
        """Add a single unidirectional link (used by tests and examples
        that reproduce the paper's asymmetric figures)."""
        if self._frozen:
            raise TopologyError("cannot add links to a frozen network")
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError("self-loop on node {} is not allowed".format(u))
        if (u, v) in self._by_endpoints:
            raise TopologyError("link {}->{} already exists".format(u, v))
        if capacity <= 0:
            raise TopologyError("capacity must be positive, got {}".format(capacity))
        return self._add_link(u, v, capacity)

    def _add_link(self, u: int, v: int, capacity: float) -> int:
        link_id = len(self._links)
        link = Link(link_id=link_id, src=u, dst=v, capacity=capacity)
        self._links.append(link)
        self._out[u].append(link_id)
        self._in[v].append(link_id)
        self._by_endpoints[(u, v)] = link_id
        return link_id

    def freeze(self) -> "Network":
        """Mark the topology read-only.  Returns ``self`` for chaining."""
        self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_links(self) -> int:
        """Number of *unidirectional* links (the paper's ``N``)."""
        return len(self._links)

    @property
    def num_edges(self) -> int:
        """Number of bidirectional edges (link pairs count once)."""
        seen = set()
        count = 0
        for link in self._links:
            key = (min(link.src, link.dst), max(link.src, link.dst))
            if key not in seen:
                seen.add(key)
                count += 1
        return count

    def nodes(self) -> range:
        return range(self._num_nodes)

    def links(self) -> Sequence[Link]:
        return tuple(self._links)

    def link(self, link_id: int) -> Link:
        try:
            return self._links[link_id]
        except IndexError:
            raise TopologyError("unknown link id {}".format(link_id))

    def link_between(self, u: int, v: int) -> Link:
        """Return the unidirectional link ``u -> v``."""
        try:
            return self._links[self._by_endpoints[(u, v)]]
        except KeyError:
            raise TopologyError("no link {}->{}".format(u, v))

    def has_link(self, u: int, v: int) -> bool:
        return (u, v) in self._by_endpoints

    def reverse_link(self, link_id: int) -> Optional[Link]:
        """Return the opposite-direction twin of a link, if present."""
        link = self.link(link_id)
        twin = self._by_endpoints.get((link.dst, link.src))
        return self._links[twin] if twin is not None else None

    def out_links(self, node: int) -> List[Link]:
        self._check_node(node)
        return [self._links[i] for i in self._out[node]]

    def in_links(self, node: int) -> List[Link]:
        self._check_node(node)
        return [self._links[i] for i in self._in[node]]

    def neighbors(self, node: int) -> List[int]:
        """Out-neighbors of ``node`` (the paper's ``NB_i``)."""
        self._check_node(node)
        return [self._links[i].dst for i in self._out[node]]

    def degree(self, node: int) -> int:
        """Out-degree (equals undirected degree for paired topologies)."""
        self._check_node(node)
        return len(self._out[node])

    def average_degree(self) -> float:
        """The paper's ``E``: average node degree over bidirectional edges."""
        if self._num_nodes == 0:
            return 0.0
        return 2.0 * self.num_edges / self._num_nodes

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise TopologyError(
                "node {} out of range [0, {})".format(node, self._num_nodes)
            )

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True when every node is reachable from node 0 along links."""
        if self._num_nodes == 1:
            return True
        if not self._links:
            return False
        seen = {0}
        queue = deque([0])
        while queue:
            node = queue.popleft()
            for link_id in self._out[node]:
                nxt = self._links[link_id].dst
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return len(seen) == self._num_nodes

    def connected_components(self) -> List[List[int]]:
        """Weakly connected components as sorted node lists."""
        unseen = set(range(self._num_nodes))
        components: List[List[int]] = []
        while unseen:
            start = min(unseen)
            comp = {start}
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for link_id in self._out[node]:
                    nxt = self._links[link_id].dst
                    if nxt not in comp:
                        comp.add(nxt)
                        queue.append(nxt)
                for link_id in self._in[node]:
                    prv = self._links[link_id].src
                    if prv not in comp:
                        comp.add(prv)
                        queue.append(prv)
            unseen -= comp
            components.append(sorted(comp))
        return components

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Network(nodes={}, links={}, E={:.2f})".format(
            self._num_nodes, self.num_links, self.average_degree()
        )


@dataclass(frozen=True)
class Route:
    """A loop-free path through a network.

    Attributes:
        nodes: The node sequence, ``nodes[0]`` is the source and
            ``nodes[-1]`` the destination.
        link_ids: The traversed link ids, ``len(nodes) - 1`` of them.
    """

    nodes: Tuple[int, ...]
    link_ids: Tuple[int, ...]
    _lset: FrozenSet[int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise TopologyError("a route needs at least two nodes")
        if len(self.link_ids) != len(self.nodes) - 1:
            raise TopologyError(
                "route with {} nodes must have {} links, got {}".format(
                    len(self.nodes), len(self.nodes) - 1, len(self.link_ids)
                )
            )
        if len(set(self.nodes)) != len(self.nodes):
            raise TopologyError("route revisits a node: {}".format(self.nodes))
        object.__setattr__(self, "_lset", frozenset(self.link_ids))

    @classmethod
    def from_nodes(cls, network: Network, nodes: Iterable[int]) -> "Route":
        """Build a route from a node sequence, resolving link ids."""
        node_list = tuple(nodes)
        link_ids = tuple(
            network.link_between(u, v).link_id
            for u, v in zip(node_list, node_list[1:])
        )
        return cls(nodes=node_list, link_ids=link_ids)

    @property
    def source(self) -> int:
        return self.nodes[0]

    @property
    def destination(self) -> int:
        return self.nodes[-1]

    @property
    def hop_count(self) -> int:
        return len(self.link_ids)

    @property
    def lset(self) -> FrozenSet[int]:
        """The set of links in this route (the paper's ``LSET_r``)."""
        return self._lset

    def uses_link(self, link_id: int) -> bool:
        return link_id in self._lset

    def shared_links(self, other: "Route") -> FrozenSet[int]:
        """Links this route shares with ``other`` (overlap test)."""
        return self._lset & other._lset

    def is_disjoint_from(self, other: "Route") -> bool:
        """True when the two routes share no unidirectional link."""
        return not (self._lset & other._lset)

    def __iter__(self) -> Iterator[int]:
        return iter(self.link_ids)

    def __len__(self) -> int:
        return self.hop_count

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "-".join(str(n) for n in self.nodes)
