"""Topology substrate: network model, generators and distance tables."""

from .graph import Link, Network, Route, TopologyError
from .waxman import WaxmanParameters, waxman_network
from .mesh import hexagonal_mesh_network, mesh_network, mesh_node, torus_network
from .generators import (
    complete_network,
    line_network,
    network_from_edges,
    random_regular_network,
    ring_network,
    star_network,
)
from .distance import (
    UNREACHABLE,
    DistanceTable,
    all_pairs_hop_counts,
    average_path_length,
    build_distance_tables,
    hop_counts_from,
    network_diameter,
)
from .serialize import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)

__all__ = [
    "Link",
    "Network",
    "Route",
    "TopologyError",
    "WaxmanParameters",
    "waxman_network",
    "mesh_network",
    "mesh_node",
    "torus_network",
    "hexagonal_mesh_network",
    "ring_network",
    "line_network",
    "star_network",
    "complete_network",
    "random_regular_network",
    "network_from_edges",
    "UNREACHABLE",
    "DistanceTable",
    "hop_counts_from",
    "all_pairs_hop_counts",
    "network_diameter",
    "average_path_length",
    "build_distance_tables",
    "load_network",
    "save_network",
    "network_to_dict",
    "network_from_dict",
]
