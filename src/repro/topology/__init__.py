"""Topology substrate: network model, generators and distance tables."""

from .graph import Link, Network, Route, TopologyError
from .waxman import WaxmanParameters, waxman_network
from .mesh import hexagonal_mesh_network, mesh_network, mesh_node, torus_network
from .generators import (
    complete_network,
    line_network,
    network_from_edges,
    random_regular_network,
    ring_network,
    star_network,
)
from .distance import (
    UNREACHABLE,
    DistanceTable,
    all_pairs_hop_counts,
    average_path_length,
    build_distance_tables,
    hop_counts_from,
    network_diameter,
)
from .serialize import (
    load_network,
    load_network_with_groups,
    network_from_dict,
    network_to_dict,
    risk_groups_from_document,
    save_network,
)
from .srlg import (
    RiskGroupSet,
    mesh_conduit_groups,
    proximity_groups,
    risk_groups_from_dict,
    risk_groups_to_dict,
)

__all__ = [
    "Link",
    "Network",
    "Route",
    "TopologyError",
    "WaxmanParameters",
    "waxman_network",
    "mesh_network",
    "mesh_node",
    "torus_network",
    "hexagonal_mesh_network",
    "ring_network",
    "line_network",
    "star_network",
    "complete_network",
    "random_regular_network",
    "network_from_edges",
    "UNREACHABLE",
    "DistanceTable",
    "hop_counts_from",
    "all_pairs_hop_counts",
    "network_diameter",
    "average_path_length",
    "build_distance_tables",
    "load_network",
    "load_network_with_groups",
    "save_network",
    "network_to_dict",
    "network_from_dict",
    "risk_groups_from_document",
    "RiskGroupSet",
    "mesh_conduit_groups",
    "proximity_groups",
    "risk_groups_to_dict",
    "risk_groups_from_dict",
]
