"""Hop-count distance machinery.

Section 4.1: "Each network node maintains a distance table (DT) ...
containing, for each destination j and for each neighbor k in NB_i,
the minimum hop count from i to j via k".  The minimum distance is
``D_j^i = min_k D_{j,k}^i + 1``.  Distance tables are rebuilt only on
topology change, so this module exposes plain precomputation helpers;
:class:`DistanceTable` is the per-node structure the bounded-flooding
scheme consults on every CDP forward decision.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from .graph import Network, TopologyError

#: Sentinel hop count for unreachable destinations.
UNREACHABLE = float("inf")


def hop_counts_from(network: Network, source: int) -> List[float]:
    """Single-source minimum hop counts (BFS over out-links)."""
    dist: List[float] = [UNREACHABLE] * network.num_nodes
    dist[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for link in network.out_links(node):
            if dist[link.dst] == UNREACHABLE:
                dist[link.dst] = dist[node] + 1
                queue.append(link.dst)
    return dist


def all_pairs_hop_counts(network: Network) -> List[List[float]]:
    """Hop-count matrix ``D[i][j]``; BFS from every node."""
    return [hop_counts_from(network, node) for node in network.nodes()]


def network_diameter(network: Network) -> int:
    """Longest shortest path; raises if the network is disconnected."""
    best = 0
    for row in all_pairs_hop_counts(network):
        finite = [d for d in row if d != UNREACHABLE]
        if len(finite) != network.num_nodes:
            raise TopologyError("diameter undefined: network disconnected")
        best = max(best, int(max(finite)))
    return best


def average_path_length(network: Network) -> float:
    """Mean hop count over all ordered connected node pairs."""
    total = 0.0
    pairs = 0
    for i, row in enumerate(all_pairs_hop_counts(network)):
        for j, d in enumerate(row):
            if i != j and d != UNREACHABLE:
                total += d
                pairs += 1
    if pairs == 0:
        raise TopologyError("no connected node pairs")
    return total / pairs


class DistanceTable:
    """Per-node distance table ``D_{j,k}^i`` from Section 4.1.

    For node ``i``, ``via(j, k)`` is the minimum hop count from ``i``
    to destination ``j`` when the first hop is neighbor ``k``; and
    ``distance(j)`` is ``min_k via(j, k) + 1`` — with the convention
    that ``distance(i) == 0``.

    Built from all-pairs BFS: the hop count from ``i`` to ``j`` via
    neighbor ``k`` equals ``1 + D[k][j]`` minimized over nothing (the
    table stores ``D[k][j]`` itself; Eq. 7 adds the ``+1``).
    """

    def __init__(self, network: Network, node: int,
                 all_pairs: Optional[List[List[float]]] = None) -> None:
        network._check_node(node)
        self._node = node
        self._neighbors = tuple(network.neighbors(node))
        pairs = all_pairs if all_pairs is not None else all_pairs_hop_counts(network)
        # _via[k][j] = min hops k -> j (the D^i_{j,k} matrix transposed
        # for cache-friendly row access per neighbor).
        self._via: Dict[int, List[float]] = {
            k: list(pairs[k]) for k in self._neighbors
        }
        self._num_nodes = network.num_nodes

    @property
    def node(self) -> int:
        return self._node

    @property
    def neighbors(self) -> tuple:
        return self._neighbors

    def via(self, destination: int, neighbor: int) -> float:
        """``D_{j,k}^i``: hops from ``neighbor`` to ``destination``.

        Following Eq. 7, the distance from this node to ``destination``
        through ``neighbor`` is ``via(destination, neighbor) + 1``.
        """
        if neighbor not in self._via:
            raise TopologyError(
                "{} is not a neighbor of node {}".format(neighbor, self._node)
            )
        if not 0 <= destination < self._num_nodes:
            raise TopologyError("unknown destination {}".format(destination))
        return self._via[neighbor][destination]

    def distance(self, destination: int) -> float:
        """Minimum hop count ``D_j^i`` from this node to ``destination``."""
        if destination == self._node:
            return 0
        if not self._neighbors:
            return UNREACHABLE
        return min(self._via[k][destination] for k in self._neighbors) + 1


def build_distance_tables(network: Network) -> List[DistanceTable]:
    """Distance tables for every node, sharing one all-pairs BFS."""
    pairs = all_pairs_hop_counts(network)
    return [DistanceTable(network, node, pairs) for node in network.nodes()]
