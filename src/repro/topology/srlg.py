"""Shared-risk link groups (SRLGs).

The paper's fault model assumes "only a single link can fail between
two successive recovery actions"; real outages are correlated — a cut
conduit, a failed line card, a flooded duct takes down a *group* of
links at once.  A :class:`RiskGroupSet` names those groups on top of a
frozen :class:`~repro.topology.graph.Network`:

* ``singleton`` — one group per unidirectional link; this degenerate
  assignment makes every SRLG-aware code path reduce exactly to the
  paper's per-link behavior (the equivalence the tests pin).
* ``mesh_conduit_groups`` — on a ``rows x cols`` mesh, all edges of one
  row (or column) share a physical conduit; ``segment`` chops each
  conduit into shorter runs for group-size ablations.
* ``proximity_groups`` — on geometric graphs (Waxman), edges whose
  midpoints fall into the same spatial cell share a duct.
* ``from_groups`` — explicit user-specified groups; links not named in
  any group get implicit singleton groups so the assignment always
  covers the whole network.

Groups partition the link set (a link belongs to exactly one group);
both directions of a bidirectional edge normally share their group,
since a backhoe does not care about traffic direction.  Group ids are
dense integers ``0 .. num_groups - 1`` assigned deterministically by
the constructors, so seeded campaigns that sample groups reproduce.
"""

from __future__ import annotations

import math
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .graph import Network, TopologyError

_SRLG_FORMAT_VERSION = 1


class RiskGroupSet:
    """An immutable partition of a network's links into risk groups."""

    __slots__ = ("_num_links", "_members", "_names", "_group_of")

    def __init__(
        self,
        num_links: int,
        members: Sequence[FrozenSet[int]],
        names: Optional[Sequence[str]] = None,
    ) -> None:
        if num_links <= 0:
            raise TopologyError("risk groups need a non-empty network")
        if names is not None and len(names) != len(members):
            raise TopologyError(
                "{} group names for {} groups".format(len(names), len(members))
            )
        self._num_links = num_links
        self._members: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(group) for group in members
        )
        self._names: Tuple[str, ...] = tuple(
            names
            if names is not None
            else ("srlg-{}".format(i) for i in range(len(self._members)))
        )
        group_of: List[int] = [-1] * num_links
        for gid, group in enumerate(self._members):
            if not group:
                raise TopologyError("risk group {} is empty".format(gid))
            for link_id in group:
                if not 0 <= link_id < num_links:
                    raise TopologyError(
                        "risk group {} names unknown link {}".format(gid, link_id)
                    )
                if group_of[link_id] != -1:
                    raise TopologyError(
                        "link {} belongs to risk groups {} and {}".format(
                            link_id, group_of[link_id], gid
                        )
                    )
                group_of[link_id] = gid
        uncovered = [i for i, gid in enumerate(group_of) if gid == -1]
        if uncovered:
            raise TopologyError(
                "links not covered by any risk group: {}".format(uncovered[:8])
            )
        self._group_of: Tuple[int, ...] = tuple(group_of)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        return self._num_links

    @property
    def num_groups(self) -> int:
        return len(self._members)

    def group_ids(self) -> range:
        return range(len(self._members))

    def members(self, group_id: int) -> FrozenSet[int]:
        """The link ids sharing risk group ``group_id``."""
        try:
            return self._members[group_id]
        except IndexError:
            raise TopologyError("unknown risk group id {}".format(group_id))

    def name(self, group_id: int) -> str:
        try:
            return self._names[group_id]
        except IndexError:
            raise TopologyError("unknown risk group id {}".format(group_id))

    def group_of(self, link_id: int) -> int:
        """The (single) risk group containing ``link_id``."""
        try:
            return self._group_of[link_id]
        except IndexError:
            raise TopologyError("unknown link id {}".format(link_id))

    def groups_of(self, link_ids: Iterable[int]) -> FrozenSet[int]:
        """The set of risk groups touched by a link set (a route's
        LSET mapped through the risk partition)."""
        return frozenset(self.group_of(link_id) for link_id in link_ids)

    @property
    def is_singleton(self) -> bool:
        """True when every group holds exactly one link — the
        degenerate assignment equivalent to the paper's model."""
        return len(self._members) == self._num_links

    @property
    def max_group_size(self) -> int:
        return max(len(group) for group in self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "RiskGroupSet(groups={}, links={}, max_size={})".format(
            self.num_groups, self._num_links, self.max_group_size
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def singleton(cls, network: Network) -> "RiskGroupSet":
        """One group per unidirectional link (the paper's fault model)."""
        return cls(
            network.num_links,
            [frozenset({link_id}) for link_id in range(network.num_links)],
            names=["link-{}".format(link_id) for link_id in range(network.num_links)],
        )

    @classmethod
    def from_groups(
        cls,
        network: Network,
        groups: Iterable[Iterable[int]],
        names: Optional[Sequence[str]] = None,
    ) -> "RiskGroupSet":
        """Explicit groups; links not named anywhere become implicit
        singleton groups appended after the explicit ones."""
        explicit = [frozenset(group) for group in groups]
        explicit_names = list(
            names
            if names is not None
            else ("srlg-{}".format(i) for i in range(len(explicit)))
        )
        if len(explicit_names) != len(explicit):
            raise TopologyError(
                "{} group names for {} groups".format(
                    len(explicit_names), len(explicit)
                )
            )
        covered = set()
        for group in explicit:
            covered.update(group)
        members = list(explicit)
        group_names = explicit_names
        for link_id in range(network.num_links):
            if link_id not in covered:
                members.append(frozenset({link_id}))
                group_names.append("link-{}".format(link_id))
        return cls(network.num_links, members, names=group_names)


def _edge_group(network: Network, u: int, v: int) -> FrozenSet[int]:
    """Both unidirectional links of the edge ``u - v``."""
    ids = set()
    if network.has_link(u, v):
        ids.add(network.link_between(u, v).link_id)
    if network.has_link(v, u):
        ids.add(network.link_between(v, u).link_id)
    if not ids:
        raise TopologyError("no edge between nodes {} and {}".format(u, v))
    return frozenset(ids)


def mesh_conduit_groups(
    network: Network,
    rows: int,
    cols: int,
    segment: Optional[int] = None,
) -> RiskGroupSet:
    """Row/column conduit SRLGs for a ``rows x cols`` mesh.

    All horizontal edges of one row ride the same physical conduit, as
    do all vertical edges of one column — the standard duct layout for
    a street grid.  ``segment`` chops each conduit into runs of at most
    ``segment`` consecutive edges (``None`` = whole conduit), which is
    the knob the group-size ablation sweeps.
    """
    if rows * cols != network.num_nodes:
        raise TopologyError(
            "{}x{} mesh does not match a {}-node network".format(
                rows, cols, network.num_nodes
            )
        )
    if segment is not None and segment < 1:
        raise TopologyError("segment must be >= 1, got {}".format(segment))

    def chunk(edges: List[FrozenSet[int]]) -> List[FrozenSet[int]]:
        if segment is None:
            return [frozenset().union(*edges)] if edges else []
        return [
            frozenset().union(*edges[i : i + segment])
            for i in range(0, len(edges), segment)
        ]

    members: List[FrozenSet[int]] = []
    names: List[str] = []
    for r in range(rows):
        edges = [
            _edge_group(network, r * cols + c, r * cols + c + 1)
            for c in range(cols - 1)
        ]
        for i, group in enumerate(chunk(edges)):
            members.append(group)
            names.append("row-{}-{}".format(r, i))
    for c in range(cols):
        edges = [
            _edge_group(network, r * cols + c, (r + 1) * cols + c)
            for r in range(rows - 1)
        ]
        for i, group in enumerate(chunk(edges)):
            members.append(group)
            names.append("col-{}-{}".format(c, i))
    return RiskGroupSet(network.num_links, members, names=names)


def proximity_groups(
    network: Network,
    points: Optional[Sequence[Tuple[float, float]]] = None,
    cell_size: float = 0.25,
) -> RiskGroupSet:
    """Geometric conduit bundles: edges whose midpoints fall into the
    same ``cell_size`` x ``cell_size`` spatial cell share a duct.

    ``points`` are the node coordinates in the unit square; for
    networks built by :func:`~repro.topology.waxman.waxman_network`
    they default to the generator's recorded ``layout``.
    """
    if points is None:
        points = getattr(network, "layout", None)
        if points is None:
            raise TopologyError(
                "proximity_groups needs node coordinates: pass points= or "
                "use a generator that records a layout"
            )
    if len(points) != network.num_nodes:
        raise TopologyError(
            "{} coordinates for {} nodes".format(len(points), network.num_nodes)
        )
    if cell_size <= 0:
        raise TopologyError("cell_size must be positive")
    cells: Dict[Tuple[int, int], set] = {}
    seen_edges = set()
    for link in network.links():
        key = (min(link.src, link.dst), max(link.src, link.dst))
        if key in seen_edges:
            continue
        seen_edges.add(key)
        (xu, yu), (xv, yv) = points[link.src], points[link.dst]
        mid = ((xu + xv) / 2.0, (yu + yv) / 2.0)
        cell = (
            int(math.floor(mid[0] / cell_size)),
            int(math.floor(mid[1] / cell_size)),
        )
        cells.setdefault(cell, set()).update(_edge_group(network, *key))
    members = []
    names = []
    for cell in sorted(cells):
        members.append(frozenset(cells[cell]))
        names.append("cell-{}-{}".format(*cell))
    return RiskGroupSet(network.num_links, members, names=names)


# ----------------------------------------------------------------------
# Serialization (embedded in the topology JSON document)
# ----------------------------------------------------------------------
def risk_groups_to_dict(groups: RiskGroupSet) -> Dict[str, object]:
    """JSON-ready form of an assignment (the topology document's
    ``srlg`` section)."""
    return {
        "version": _SRLG_FORMAT_VERSION,
        "groups": [
            {"name": groups.name(gid), "links": sorted(groups.members(gid))}
            for gid in groups.group_ids()
        ],
    }


def risk_groups_from_dict(
    data: Mapping[str, object], network: Network
) -> RiskGroupSet:
    """Rebuild an assignment from :func:`risk_groups_to_dict` output,
    validated against ``network``'s link count."""
    version = data.get("version")
    if version != _SRLG_FORMAT_VERSION:
        raise TopologyError(
            "unsupported SRLG format version: {}".format(version)
        )
    entries = data.get("groups")
    if not isinstance(entries, list):
        raise TopologyError("SRLG document missing 'groups' list")
    members = [frozenset(entry["links"]) for entry in entries]
    names = [str(entry.get("name", "srlg-{}".format(i)))
             for i, entry in enumerate(entries)]
    return RiskGroupSet(network.num_links, members, names=names)
