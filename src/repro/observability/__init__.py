"""End-to-end span tracing for the DRTP control plane.

The paper's evaluation hinges on understanding *why* a backup
activation succeeds or fails — which links conflicted, which
advertisements were stale, how long signaling took.  This package
turns every admission, route search, flooding round, signaling walk
and failure-recovery into an inspectable timeline:

* :mod:`repro.observability.spans` — :class:`Span` (a context manager
  with monotonic timings, tags and parent links) and
  :class:`TraceCollector` (a bounded ring buffer with drop counting);
  nesting rides on :mod:`contextvars`, so concurrent asyncio batches
  keep their span trees separate;
* :mod:`repro.observability.export` — Chrome ``trace_event`` JSON
  (loadable in ``chrome://tracing`` / Perfetto) and a structured
  NDJSON stream, plus :func:`validate_chrome_trace`, the schema check
  run before anything is written.

Instrumented layers (:mod:`repro.core.service`,
:mod:`repro.core.signaling`, :mod:`repro.routing`,
:mod:`repro.server`, :mod:`repro.campaign`) follow the
:mod:`repro.metrics` optional-dependency discipline: tracing is off
unless a collector is passed in, and the untraced path executes the
exact pre-tracing instruction stream.  The span taxonomy and the
"debugging a rejected DR-connection" walkthrough live in
``docs/tracing.md``.
"""

from .spans import Span, TraceCollector
from .export import (
    TraceFormatError,
    chrome_trace,
    read_ndjson,
    validate_chrome_trace,
    write_chrome_trace,
    write_ndjson,
)

__all__ = [
    "Span",
    "TraceCollector",
    "TraceFormatError",
    "chrome_trace",
    "read_ndjson",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_ndjson",
]
