"""Hierarchical spans: the building blocks of the trace layer.

A :class:`Span` measures one operation — an admission, a route search,
a signaling walk — with a monotonic start/duration, free-form tags and
a link to its parent span.  A :class:`TraceCollector` accumulates
finished spans in a bounded ring buffer (oldest spans are evicted and
counted in :attr:`TraceCollector.dropped`, the same discipline as
:class:`~repro.simulation.tracing.Tracer`).

Parent tracking rides on :mod:`contextvars`, so nesting is automatic
*and* concurrency-safe: every asyncio task carries its own span stack,
which is what keeps the spans of two pipelined server batches from
interleaving their parents.  Each independent stack (task, thread of
work, worker process) gets its own ``tid`` lane so Chrome's trace
viewer renders concurrent trees on separate rows.

Instrumented layers follow the :mod:`repro.metrics` discipline: a
``trace=None`` default that records nothing and costs nothing — every
call site guards with ``if trace is not None`` so the untraced hot
path executes exactly the pre-tracing instruction stream.

Synchronous usage::

    collector = TraceCollector(max_spans=100_000)
    with collector.span("service.admit", category="service") as span:
        ...
        span.tag(accepted=True)

Two-phase usage (for spans that start in one task and finish in
another, like a server op that resolves on the writer task)::

    span = collector.span("server.op", op="admit").start_now()
    ...  # later, possibly after awaits
    span.finish(ok=True)
"""

from __future__ import annotations

import contextvars
import itertools
from collections import deque
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

__all__ = ["Span", "TraceCollector"]


class Span:
    """One timed, tagged operation in a trace tree.

    Spans are created by :meth:`TraceCollector.span` — the collector
    assigns the id, resolves the parent from the calling context (or an
    explicit ``parent``) and picks the ``tid`` lane.  A span records
    itself into its collector when it finishes; unfinished spans are
    never exported.
    """

    __slots__ = (
        "name", "category", "tags", "span_id", "parent_id",
        "tid", "pid", "start", "duration", "status",
        "_collector", "_token",
    )

    def __init__(
        self,
        collector: "TraceCollector",
        name: str,
        category: str,
        tags: Dict[str, Any],
        span_id: int,
        parent_id: Optional[int],
        tid: int,
    ) -> None:
        self._collector = collector
        self.name = name
        self.category = category
        self.tags = tags
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = tid
        self.pid = 0
        self.start = 0.0
        self.duration = 0.0
        self.status = "ok"
        self._token = None

    # -- context-manager protocol (nesting via contextvars) -------------
    def __enter__(self) -> "Span":
        collector = self._collector
        self.start = collector._clock() - collector.epoch
        self._token = collector._current.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        collector = self._collector
        self.duration = (collector._clock() - collector.epoch) - self.start
        collector._current.reset(self._token)
        self._token = None
        if exc_type is not None:
            self.status = "error"
            self.tags.setdefault("error", exc_type.__name__)
        collector._record(self)
        return False

    # -- two-phase protocol (cross-task spans; no contextvar) -----------
    def start_now(self) -> "Span":
        """Start the clock without becoming the context's current span
        (the parent was already resolved at creation time)."""
        collector = self._collector
        self.start = collector._clock() - collector.epoch
        return self

    def finish(self, **tags: Any) -> "Span":
        """Stop the clock, absorb final tags, record the span."""
        collector = self._collector
        self.duration = (collector._clock() - collector.epoch) - self.start
        if tags:
            self.tags.update(tags)
        collector._record(self)
        return self

    # -- tagging ---------------------------------------------------------
    def tag(self, **tags: Any) -> "Span":
        """Attach or overwrite tags (chainable)."""
        self.tags.update(tags)
        return self

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what NDJSON lines and worker payloads carry)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "tid": self.tid,
            "pid": self.pid,
            "status": self.status,
            "tags": self.tags,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Span({!r}, id={}, parent={}, dur={:.6f})".format(
            self.name, self.span_id, self.parent_id, self.duration
        )


class TraceCollector:
    """Bounded accumulator of finished spans with drop counting.

    ``max_spans`` bounds memory on long runs: the collector becomes a
    ring buffer keeping the *newest* spans and counting evictions in
    :attr:`dropped`.  ``clock`` defaults to :func:`time.perf_counter`;
    tests inject a fake counter for deterministic timings (the golden
    Chrome-trace fixture is built that way).

    ``detail`` opts into debug-level tags that cost real work to
    compute — the backup-search cost decomposition re-evaluates the
    scheme's conflict cost over the chosen route.  ``repro trace``
    turns it on (a debugging tool can afford it); the server and
    campaign collectors leave it off so production tracing stays
    within the <5 % throughput budget.
    """

    def __init__(
        self,
        max_spans: Optional[int] = None,
        clock: Callable[[], float] = perf_counter,
        detail: bool = False,
    ) -> None:
        if max_spans is not None and max_spans < 1:
            raise ValueError(
                "max_spans must be >= 1 when given, got {}".format(max_spans)
            )
        self.max_spans = max_spans
        #: Record expensive debug-level tags (cost decompositions).
        self.detail = detail
        self._clock = clock
        #: Monotonic origin; span ``start`` values are relative to it.
        self.epoch = clock()
        self._spans: "deque" = deque(maxlen=max_spans)
        #: Spans evicted from the ring buffer (0 while unbounded).
        self.dropped = 0
        self._ids = itertools.count(1)
        self._lanes = itertools.count(0)
        # Per-context span stack + lane: every asyncio task (and the
        # synchronous main flow) sees its own values, so concurrent
        # trees never interleave parents.
        self._current: "contextvars.ContextVar[Optional[Span]]" = (
            contextvars.ContextVar("drtp_current_span", default=None)
        )
        self._lane: "contextvars.ContextVar[Optional[int]]" = (
            contextvars.ContextVar("drtp_span_lane", default=None)
        )

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        category: str = "",
        parent: Optional[Span] = None,
        **tags: Any,
    ) -> Span:
        """Create a span (use as a context manager, or two-phase via
        :meth:`Span.start_now`/:meth:`Span.finish`).

        The parent is the context's current span unless ``parent``
        overrides it (cross-task correlation: a writer-task span can
        claim a handler-task span as parent).  Root spans of each
        context get their own ``tid`` lane; children inherit theirs.
        """
        if parent is None:
            parent = self._current.get()
        if parent is not None:
            parent_id: Optional[int] = parent.span_id
            tid = parent.tid
        else:
            parent_id = None
            lane = self._lane.get()
            if lane is None:
                lane = next(self._lanes)
                self._lane.set(lane)
            tid = lane
        return Span(
            self, name, category, tags, next(self._ids), parent_id, tid
        )

    def current(self) -> Optional[Span]:
        """The context's innermost open span, if any."""
        return self._current.get()

    # ------------------------------------------------------------------
    # Recording and views
    # ------------------------------------------------------------------
    def _record(self, span: Span) -> None:
        if (
            self.max_spans is not None
            and len(self._spans) == self.max_spans
        ):
            self.dropped += 1  # deque(maxlen) evicts the oldest below
        self._spans.append(span)

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans in completion order (children before their
        parents), optionally filtered by name."""
        if name is None:
            return list(self._spans)
        return [span for span in self._spans if span.name == name]

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def counts(self) -> Dict[str, int]:
        """Span histogram by name."""
        histogram: Dict[str, int] = {}
        for span in self._spans:
            histogram[span.name] = histogram.get(span.name, 0) + 1
        return histogram

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Every finished span as a plain dict (worker payload form)."""
        return [span.to_dict() for span in self._spans]

    # ------------------------------------------------------------------
    # Cross-process merge
    # ------------------------------------------------------------------
    def ingest(
        self,
        span_dicts: Iterable[Dict[str, Any]],
        pid: int,
        dropped: int = 0,
    ) -> int:
        """Merge spans recorded by another collector (a campaign
        worker, a subprocess) under process lane ``pid``.

        Span ids are remapped into this collector's id space so merged
        trees can never collide with local ones; parent links *within*
        the batch are preserved, parents that fell out of the worker's
        ring buffer become roots.  Returns the number of spans merged.
        """
        batch = list(span_dicts)
        mapping = {d["span_id"]: next(self._ids) for d in batch}
        for data in batch:
            span = Span(
                self,
                data["name"],
                data.get("category", ""),
                dict(data.get("tags") or {}),
                mapping[data["span_id"]],
                mapping.get(data.get("parent_id")),
                data.get("tid", 0),
            )
            span.pid = pid
            span.start = data.get("start", 0.0)
            span.duration = data.get("duration", 0.0)
            span.status = data.get("status", "ok")
            self._record(span)
        self.dropped += dropped
        return len(batch)
