"""Trace export: Chrome ``trace_event`` JSON and NDJSON streams.

Two formats, two audiences:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (complete ``"X"`` events plus ``"M"``
  process-name metadata), loadable in ``chrome://tracing`` and
  https://ui.perfetto.dev.  Span lanes map to trace ``tid`` rows and
  worker processes to ``pid`` groups, so a sharded campaign renders as
  one timeline per worker.
* :func:`write_ndjson` / :func:`read_ndjson` — a structured
  newline-delimited JSON stream (one span per line behind a ``meta``
  header) for programmatic analysis: ``jq``, pandas, or the
  walkthroughs in ``docs/tracing.md``.

:func:`validate_chrome_trace` is the schema check both the test
suite's golden fixture and ``repro trace`` run before anything touches
disk: it enforces the ``trace_event`` invariants Perfetto relies on
(event phases, required keys per phase, numeric non-negative
timestamps, JSON-able args).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

from .spans import Span, TraceCollector

__all__ = [
    "TraceFormatError",
    "chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_ndjson",
    "read_ndjson",
]

#: NDJSON stream schema version.
NDJSON_VERSION = 1

#: Event phases the validator accepts (the subset of the trace_event
#: spec this exporter emits, plus the common instant/duration phases a
#: hand-edited trace may contain).
_KNOWN_PHASES = frozenset("XMBEiIC")


class TraceFormatError(ValueError):
    """Raised when a payload violates the Chrome trace_event schema."""


def _jsonable(value: Any) -> Any:
    """Coerce tag values into JSON-serializable shapes."""
    if isinstance(value, (frozenset, set, tuple)):
        return sorted(value) if isinstance(value, (frozenset, set)) else list(
            value
        )
    return value


def _span_args(span: Span) -> Dict[str, Any]:
    args = {key: _jsonable(value) for key, value in span.tags.items()}
    args["span_id"] = span.span_id
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    if span.status != "ok":
        args["status"] = span.status
    return args


def chrome_trace(
    spans: Union[TraceCollector, Iterable[Span]],
    label: str = "drtp",
    dropped: int = 0,
) -> Dict[str, Any]:
    """Render spans as a Chrome ``trace_event`` JSON object.

    Every span becomes one complete (``"ph": "X"``) event with
    microsecond timestamps; each distinct ``pid`` additionally gets a
    ``process_name`` metadata event so Perfetto labels the lanes.
    Passing the :class:`TraceCollector` itself also carries its
    :attr:`~TraceCollector.dropped` count into ``otherData``.
    """
    if isinstance(spans, TraceCollector):
        dropped = dropped or spans.dropped
        spans = spans.spans()
    events: List[Dict[str, Any]] = []
    seen_pids = set()
    for span in spans:
        if span.pid not in seen_pids:
            seen_pids.add(span.pid)
            events.append({
                "ph": "M",
                "name": "process_name",
                "pid": span.pid,
                "tid": 0,
                "args": {
                    "name": label if span.pid == 0
                    else "{} worker {}".format(label, span.pid)
                },
            })
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category or "drtp",
            "ts": round(span.start * 1e6, 3),
            "dur": round(span.duration * 1e6, 3),
            "pid": span.pid,
            "tid": span.tid,
            "args": _span_args(span),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.observability",
            "label": label,
            "dropped_spans": dropped,
        },
    }


def validate_chrome_trace(payload: Any) -> int:
    """Check a payload against the ``trace_event`` schema.

    Returns the number of events validated; raises
    :class:`TraceFormatError` on the first violation.  Accepts both
    the object form (``{"traceEvents": [...]}``) and the bare array
    form the spec also allows.
    """
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise TraceFormatError(
                "object-form trace needs a 'traceEvents' list"
            )
    elif isinstance(payload, list):
        events = payload
    else:
        raise TraceFormatError(
            "trace must be an object with 'traceEvents' or an event array, "
            "got {}".format(type(payload).__name__)
        )
    for index, event in enumerate(events):
        where = "traceEvents[{}]".format(index)
        if not isinstance(event, dict):
            raise TraceFormatError("{} is not an object".format(where))
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            raise TraceFormatError(
                "{} has unknown phase {!r}".format(where, phase)
            )
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise TraceFormatError(
                "{} needs a non-empty string 'name'".format(where)
            )
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise TraceFormatError(
                    "{} needs an integer {!r}".format(where, key)
                )
        if "args" in event and not isinstance(event["args"], dict):
            raise TraceFormatError(
                "{} 'args' must be an object".format(where)
            )
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise TraceFormatError(
                        "{} needs a non-negative numeric {!r}, got "
                        "{!r}".format(where, key, value)
                    )
            if "cat" in event and not isinstance(event["cat"], str):
                raise TraceFormatError(
                    "{} 'cat' must be a string".format(where)
                )
        # Round-trip through the JSON encoder: Perfetto only ever sees
        # the serialized form, so a non-encodable arg is a defect here.
        try:
            json.dumps(event)
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                "{} is not JSON-serializable: {}".format(where, exc)
            )
    return len(events)


def write_chrome_trace(
    path: Union[str, Path],
    spans: Union[TraceCollector, Iterable[Span]],
    label: str = "drtp",
) -> int:
    """Validate and write a Chrome trace; returns the event count."""
    payload = chrome_trace(spans, label=label)
    count = validate_chrome_trace(payload)
    Path(path).write_text(json.dumps(payload, sort_keys=True))
    return count


# ----------------------------------------------------------------------
# NDJSON stream
# ----------------------------------------------------------------------
def write_ndjson(
    path: Union[str, Path],
    collector: TraceCollector,
    label: str = "drtp",
) -> int:
    """Write the collector as an NDJSON stream: one ``meta`` header
    line, then one ``span`` record per line.  Returns the span count."""
    spans = collector.spans()
    lines = [json.dumps({
        "record": "meta",
        "version": NDJSON_VERSION,
        "label": label,
        "spans": len(spans),
        "dropped": collector.dropped,
        "generated_at": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
    }, sort_keys=True)]
    for span in spans:
        record = span.to_dict()
        record["tags"] = {
            key: _jsonable(value) for key, value in record["tags"].items()
        }
        record["record"] = "span"
        lines.append(json.dumps(record, sort_keys=True))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(spans)


def read_ndjson(
    path: Union[str, Path],
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Read an NDJSON trace stream back as ``(meta, span_dicts)``."""
    meta: Dict[str, Any] = {}
    spans: List[Dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.pop("record", "span")
        if kind == "meta":
            meta = record
        else:
            spans.append(record)
    return meta, spans
