"""Traffic patterns: the paper's UT and NT endpoint distributions.

Section 6.1: "One, called UT, is uniform random selection of source
and destination nodes.  The other, NT, is random pre-selection of 10
nodes as destinations for 50% of DR-connections."  NT concentrates
backups around a few egress points, which is exactly the regime where
the D-LSR vs P-LSR information gap shows (Section 6.2).
"""

from __future__ import annotations

import abc
import random
from typing import Optional, Sequence, Tuple


class TrafficPattern(abc.ABC):
    """Samples (source, destination) pairs for connection requests."""

    name: str = "abstract"

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError("a traffic pattern needs at least 2 nodes")
        self.num_nodes = num_nodes

    @abc.abstractmethod
    def sample_pair(self, rng: random.Random) -> Tuple[int, int]:
        """Return an ordered ``(source, destination)`` pair, distinct."""


class UniformTraffic(TrafficPattern):
    """UT: both endpoints uniform over all nodes."""

    name = "UT"

    def sample_pair(self, rng: random.Random) -> Tuple[int, int]:
        source = rng.randrange(self.num_nodes)
        destination = rng.randrange(self.num_nodes - 1)
        if destination >= source:
            destination += 1
        return source, destination


class HotspotTraffic(TrafficPattern):
    """NT: a pre-selected set of hot nodes receives a fixed fraction
    of all connections as destinations; sources stay uniform.

    Args:
        num_nodes: Network size.
        hot_nodes: Explicit hot destination set, or ``None`` to
            pre-select ``hot_count`` nodes with ``selection_rng``.
        hot_count: Number of hot destinations (paper: 10).
        hot_fraction: Share of connections aimed at hot nodes
            (paper: 50%).
        selection_rng: Randomness for the pre-selection (only used
            when ``hot_nodes`` is ``None``).
    """

    name = "NT"

    def __init__(
        self,
        num_nodes: int,
        hot_nodes: Optional[Sequence[int]] = None,
        hot_count: int = 10,
        hot_fraction: float = 0.5,
        selection_rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(num_nodes)
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if hot_nodes is None:
            if not 0 < hot_count <= num_nodes:
                raise ValueError("hot_count must be in [1, num_nodes]")
            rng = selection_rng or random.Random(0)
            hot_nodes = rng.sample(range(num_nodes), hot_count)
        hot = tuple(dict.fromkeys(hot_nodes))
        for node in hot:
            if not 0 <= node < num_nodes:
                raise ValueError("hot node {} out of range".format(node))
        if not hot:
            raise ValueError("hot node set may not be empty")
        self.hot_nodes = hot
        self.hot_fraction = hot_fraction

    def sample_pair(self, rng: random.Random) -> Tuple[int, int]:
        if rng.random() < self.hot_fraction:
            destination = self.hot_nodes[rng.randrange(len(self.hot_nodes))]
        else:
            destination = rng.randrange(self.num_nodes)
        # Uniform source distinct from the destination.
        source = rng.randrange(self.num_nodes - 1)
        if source >= destination:
            source += 1
        return source, destination


def make_pattern(
    name: str, num_nodes: int, selection_rng: Optional[random.Random] = None
) -> TrafficPattern:
    """Factory by paper name ("UT" or "NT")."""
    if name == UniformTraffic.name:
        return UniformTraffic(num_nodes)
    if name == HotspotTraffic.name:
        return HotspotTraffic(num_nodes, selection_rng=selection_rng)
    raise ValueError("unknown traffic pattern {!r}".format(name))


class BandwidthClass:
    """One application class: a name, a bandwidth, a traffic share."""

    __slots__ = ("name", "bw", "weight")

    def __init__(self, name: str, bw: float, weight: float) -> None:
        if bw <= 0:
            raise ValueError("class bandwidth must be positive")
        if weight <= 0:
            raise ValueError("class weight must be positive")
        self.name = name
        self.bw = bw
        self.weight = weight

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "BandwidthClass({!r}, bw={}, weight={})".format(
            self.name, self.bw, self.weight
        )


class BandwidthMix:
    """A categorical distribution over connection bandwidths.

    Section 6.1 fixes ``bw_req`` to one constant "selected while
    keeping in mind the bandwidth and time constraints of typical
    video and audio applications"; this generalization lets scenarios
    mix classes.  The whole resource machinery is bandwidth-weighted
    (spare sizing uses the ledger's weighted demand map), so mixed
    workloads need no special-casing downstream.
    """

    def __init__(self, classes: Sequence[BandwidthClass]) -> None:
        if not classes:
            raise ValueError("a bandwidth mix needs at least one class")
        self.classes = tuple(classes)
        self._total_weight = sum(c.weight for c in self.classes)

    @classmethod
    def constant(cls, bw: float) -> "BandwidthMix":
        """The paper's single-class workload."""
        return cls([BandwidthClass("constant", bw, 1.0)])

    @classmethod
    def audio_video(cls) -> "BandwidthMix":
        """A plausible two-class mix: many thin audio streams, fewer
        fat video streams (bandwidths in units of the paper's
        ``bw_req``)."""
        return cls(
            [
                BandwidthClass("audio", 0.5, 2.0),
                BandwidthClass("video", 2.0, 1.0),
            ]
        )

    def sample(self, rng: random.Random) -> float:
        roll = rng.random() * self._total_weight
        acc = 0.0
        for klass in self.classes:
            acc += klass.weight
            if roll < acc:
                return klass.bw
        return self.classes[-1].bw

    @property
    def mean_bw(self) -> float:
        return (
            sum(c.bw * c.weight for c in self.classes) / self._total_weight
        )
