"""Discrete-event simulation: engine, workloads, scenarios, replay."""

from .engine import Engine, SimulationError
from .rng import derive_seed, seeded_rng
from .arrivals import HoldingTimeDistribution, PoissonArrivalProcess
from .workload import (
    BandwidthClass,
    BandwidthMix,
    HotspotTraffic,
    TrafficPattern,
    UniformTraffic,
    make_pattern,
)
from .scenario import LinkEvent, Scenario, generate_scenario
from .snapshots import snapshot_times
from .simulator import Observer, ScenarioSimulator, SimulationResult
from .tracing import TraceEvent, Tracer, TracingService

__all__ = [
    "Engine",
    "SimulationError",
    "derive_seed",
    "seeded_rng",
    "HoldingTimeDistribution",
    "PoissonArrivalProcess",
    "TrafficPattern",
    "UniformTraffic",
    "HotspotTraffic",
    "make_pattern",
    "BandwidthClass",
    "BandwidthMix",
    "Scenario",
    "LinkEvent",
    "generate_scenario",
    "snapshot_times",
    "Observer",
    "ScenarioSimulator",
    "SimulationResult",
    "Tracer",
    "TraceEvent",
    "TracingService",
]
