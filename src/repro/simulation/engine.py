"""A minimal discrete-event simulation engine.

The paper's evaluation is connection-granular: the only events are
DR-connection arrivals, departures, measurement snapshots, and (in the
failure examples) link failures.  This engine is a plain time-ordered
priority queue of callbacks — deterministic (FIFO among equal
timestamps), introspectable, and with no hidden global state, so two
engines can replay the same scenario under different schemes in the
same process.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, List, Optional, Tuple

from ..core.errors import SimulationError

__all__ = ["Engine", "SimulationError"]


class Engine:
    """Time-ordered event executor."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = start_time
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule at {} (now is {})".format(time, self._now)
            )
        heapq.heappush(self._heap, (time, next(self._sequence), action))

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError("delay must be non-negative, got {}".format(delay))
        self.schedule(self._now + delay, action)

    def step(self) -> bool:
        """Execute the next event; returns False when none remain."""
        if not self._heap:
            return False
        time, _, action = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        action()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run events in order; stop when the queue empties or the
        next event lies beyond ``until`` (clock then advances to
        ``until``)."""
        while self._heap:
            time = self._heap[0][0]
            if until is not None and time > until:
                break
            self.step()
        if until is not None and until > self._now:
            self._now = until
