"""Scenario files — record once, replay under every scheme.

Section 6.1: "we use scenario files to record the connection request
and release events under various bw_req and lambda values, and compare
the performance of the proposed schemes by simulating them using the
same scenario file."  (The authors generated theirs with Matlab and
simulated with ns; here both halves are Python, and the files are
JSON.)

A scenario is the full list of connection requests — arrival instant,
endpoints, bandwidth, holding time — plus the generation metadata
needed to regenerate it bit-for-bit from the seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..core.connection import ConnectionRequest
from .arrivals import HoldingTimeDistribution, PoissonArrivalProcess
from .rng import seeded_rng
from .workload import BandwidthMix, TrafficPattern, make_pattern

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class LinkEvent:
    """A scheduled persistent failure or repair of one link."""

    time: float
    link_id: int
    action: str  # "fail" | "repair"

    def __post_init__(self) -> None:
        if self.action not in ("fail", "repair"):
            raise ValueError("action must be 'fail' or 'repair'")
        if self.time < 0:
            raise ValueError("event time must be non-negative")


@dataclass
class Scenario:
    """An immutable-by-convention request trace, optionally with a
    schedule of link failures/repairs (for failure-injection runs)."""

    requests: List[ConnectionRequest]
    duration: float
    metadata: Dict[str, Any] = field(default_factory=dict)
    link_events: List[LinkEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        times = [request.arrival_time for request in self.requests]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("scenario requests must be sorted by arrival time")

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def arrival_rate(self) -> float:
        """Empirical arrival rate over the scenario horizon."""
        if self.duration <= 0:
            return 0.0
        return self.num_requests / self.duration

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": _FORMAT_VERSION,
            "duration": self.duration,
            "metadata": self.metadata,
            "link_events": [
                {"time": e.time, "link": e.link_id, "action": e.action}
                for e in self.link_events
            ],
            "requests": [
                {
                    "id": request.request_id,
                    "src": request.source,
                    "dst": request.destination,
                    "bw": request.bw_req,
                    "arrival": request.arrival_time,
                    "holding": request.holding_time,
                }
                for request in self.requests
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                "unsupported scenario version {!r}".format(data.get("version"))
            )
        requests = [
            ConnectionRequest(
                request_id=entry["id"],
                source=entry["src"],
                destination=entry["dst"],
                bw_req=entry["bw"],
                arrival_time=entry["arrival"],
                holding_time=entry["holding"],
            )
            for entry in data["requests"]
        ]
        return cls(
            requests=requests,
            duration=data["duration"],
            metadata=dict(data.get("metadata", {})),
            link_events=[
                LinkEvent(
                    time=entry["time"],
                    link_id=entry["link"],
                    action=entry["action"],
                )
                for entry in data.get("link_events", [])
            ],
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Scenario":
        return cls.from_dict(json.loads(Path(path).read_text()))


def generate_scenario(
    num_nodes: int,
    arrival_rate: float,
    duration: float,
    bw_req: Union[float, BandwidthMix] = 1.0,
    pattern: Union[str, TrafficPattern] = "UT",
    holding: Optional[HoldingTimeDistribution] = None,
    seed: int = 0,
) -> Scenario:
    """Generate a Poisson request trace.

    ``bw_req`` is either the paper's constant per-connection bandwidth
    or a :class:`~repro.simulation.workload.BandwidthMix` for
    heterogeneous (audio/video-style) workloads.

    Independent random streams (see :mod:`repro.simulation.rng`) drive
    arrivals, endpoint sampling, hot-node pre-selection, lifetimes and
    bandwidth classes, so any single knob can change without
    perturbing the others.
    """
    holding = holding or HoldingTimeDistribution()
    if isinstance(pattern, str):
        pattern = make_pattern(
            pattern, num_nodes, selection_rng=seeded_rng(seed, "hotspots")
        )
    mix = (
        bw_req
        if isinstance(bw_req, BandwidthMix)
        else BandwidthMix.constant(bw_req)
    )
    arrival_rng = seeded_rng(seed, "arrivals")
    endpoint_rng = seeded_rng(seed, "endpoints")
    holding_rng = seeded_rng(seed, "holding")
    bw_rng = seeded_rng(seed, "bandwidth")

    process = PoissonArrivalProcess(arrival_rate, arrival_rng)
    requests: List[ConnectionRequest] = []
    for request_id, arrival in enumerate(process.arrival_times(duration)):
        source, destination = pattern.sample_pair(endpoint_rng)
        requests.append(
            ConnectionRequest(
                request_id=request_id,
                source=source,
                destination=destination,
                bw_req=mix.sample(bw_rng),
                arrival_time=arrival,
                holding_time=holding.sample(holding_rng),
            )
        )
    return Scenario(
        requests=requests,
        duration=duration,
        metadata={
            "seed": seed,
            "num_nodes": num_nodes,
            "arrival_rate": arrival_rate,
            "bw_req": mix.mean_bw,
            "bw_classes": [
                {"name": c.name, "bw": c.bw, "weight": c.weight}
                for c in mix.classes
            ],
            "pattern": pattern.name,
            "holding_min": holding.minimum,
            "holding_max": holding.maximum,
        },
    )
