"""ScenarioSimulator — replay a request trace against a DRTP service.

The simulator is the glue between a :class:`~repro.simulation.scenario.Scenario`
(what happens) and a :class:`~repro.core.service.DRTPService` (who
handles it): arrivals become admission attempts, accepted connections
get departure events, and at scheduled snapshot instants the attached
observers measure whatever they care about (fault tolerance, load,
spare overhead ...).

Replaying the *same* scenario against services that differ only in
routing scheme is the paper's comparison methodology; determinism end
to end (seeded scenario, deterministic routing tie-breaks, FIFO event
ordering) makes those comparisons exact.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.service import DRTPService
from .engine import Engine
from .scenario import Scenario
from .snapshots import snapshot_times


class Observer(abc.ABC):
    """Measurement hook invoked at every snapshot instant."""

    @abc.abstractmethod
    def on_snapshot(self, service: DRTPService, time: float) -> None:
        """Inspect (never mutate) the service state."""


@dataclass
class SimulationResult:
    """Summary of one scenario replay."""

    scheme: str
    duration: float
    warmup: float
    requests: int = 0
    accepted: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    control_messages: int = 0
    active_samples: List[Tuple[float, int]] = field(default_factory=list)
    final_active: int = 0
    #: Exact running totals over every snapshot recorded through
    #: :meth:`record_active_sample` — what keeps the mean correct when
    #: ``active_samples`` is a bounded window.  Derived caches, so they
    #: do not participate in equality (serialized results rebuild the
    #: mean from the sample list instead).
    active_total: int = field(default=0, compare=False)
    active_seen: int = field(default=0, compare=False)

    @property
    def acceptance_ratio(self) -> float:
        """The paper's "probability of successfully establishing a
        DR-connection", over the whole trace."""
        if self.requests == 0:
            return 0.0
        return self.accepted / self.requests

    def record_active_sample(self, time: float, count: int) -> None:
        """Record one snapshot's active-connection count, keeping the
        running totals in step with the (possibly windowed) sample
        retention."""
        self.active_samples.append((time, count))
        self.active_total += count
        self.active_seen += 1

    @property
    def mean_active_connections(self) -> float:
        """Mean concurrently-active connections over the snapshots —
        the quantity Figure 5's capacity overhead compares.

        Integer counts sum exactly, so the running-total mean is
        bit-identical to the historical ``sum/len`` over the full
        sample list; results reconstructed from serialized samples
        (campaign merges) fall back to that list."""
        if self.active_seen:
            return self.active_total / self.active_seen
        if not self.active_samples:
            return 0.0
        return sum(count for _, count in self.active_samples) / len(
            self.active_samples
        )


class ScenarioSimulator:
    """Drives one service through one scenario."""

    def __init__(
        self,
        service: DRTPService,
        scenario: Scenario,
        warmup: Optional[float] = None,
        snapshot_count: int = 8,
        check_invariants: bool = False,
        database_refresh_interval: Optional[float] = None,
        backup_retry_interval: Optional[float] = None,
        active_window: Optional[int] = None,
    ) -> None:
        """``database_refresh_interval`` (seconds) schedules periodic
        link-state re-floods for services built with
        ``live_database=False`` — the knob for studying routing under
        stale link-state information.

        ``backup_retry_interval`` (seconds) arms background backup
        re-establishment for degraded admissions: when the service
        admits a connection unprotected because signaling faults
        exhausted its retries, the simulator schedules engine events
        that call :meth:`~repro.core.service.DRTPService.reestablish_backup`
        every interval until the connection is protected or departs —
        the paper's Section 2.3 re-establishment loop, under
        adversity.

        ``active_window`` bounds how many ``(time, count)`` snapshot
        samples the result retains (exact running totals keep
        ``mean_active_connections`` unaffected); ``None`` — the
        default, and what every paper-scale campaign uses — retains
        them all."""
        self.service = service
        self.scenario = scenario
        self.warmup = warmup if warmup is not None else 0.5 * scenario.duration
        self.snapshot_count = snapshot_count
        self.check_invariants = check_invariants
        if database_refresh_interval is not None and database_refresh_interval <= 0:
            raise ValueError("database_refresh_interval must be positive")
        self.database_refresh_interval = database_refresh_interval
        if backup_retry_interval is not None and backup_retry_interval <= 0:
            raise ValueError("backup_retry_interval must be positive")
        self.backup_retry_interval = backup_retry_interval
        if active_window is not None and active_window <= 0:
            raise ValueError("active_window must be positive")
        self.active_window = active_window

    def run(self, observers: Sequence[Observer] = ()) -> SimulationResult:
        engine = Engine()
        service = self.service
        result = SimulationResult(
            scheme=service.scheme.name,
            duration=self.scenario.duration,
            warmup=self.warmup,
        )
        if self.active_window is not None:
            # Bounded retention for long-horizon runs; the running
            # totals in record_active_sample keep the mean exact.
            result.active_samples = deque(maxlen=self.active_window)

        def arrive(request):
            def action() -> None:
                decision = service.admit(request)
                if decision.accepted:
                    engine.schedule(request.departure_time, depart(request))
                    if (
                        getattr(decision, "degraded", False)
                        and self.backup_retry_interval is not None
                    ):
                        self._schedule_backup_retry(engine, request.request_id)
                if self.check_invariants:
                    service.check_invariants()

            return action

        def depart(request):
            def action() -> None:
                # The connection may have died to an injected failure.
                if service.has_connection(request.request_id):
                    service.release(request.request_id)
                if self.check_invariants:
                    service.check_invariants()

            return action

        for request in self.scenario.requests:
            engine.schedule(request.arrival_time, arrive(request))

        for time in snapshot_times(
            self.scenario.duration, self.warmup, self.snapshot_count
        ):
            engine.schedule(time, self._snapshot(engine, observers, result))

        for event in self.scenario.link_events:
            engine.schedule(event.time, self._link_event(event))

        if self.database_refresh_interval is not None:
            interval = self.database_refresh_interval

            def refresh() -> None:
                service.refresh_database()
                if engine.now + interval <= self.scenario.duration:
                    engine.schedule_after(interval, refresh)

            engine.schedule(0.0, refresh)

        engine.run(until=self.scenario.duration)

        counters = service.counters
        result.requests = counters.requests
        result.accepted = counters.accepted
        result.rejected = dict(counters.rejected)
        result.control_messages = counters.control_messages
        result.final_active = service.active_connection_count
        return result

    def _schedule_backup_retry(self, engine: Engine, connection_id: int) -> None:
        """Arm the background re-protection loop for one degraded
        connection: retry every ``backup_retry_interval`` until the
        backup stands, the connection departs, or the horizon ends."""
        interval = self.backup_retry_interval

        def attempt() -> None:
            if not self.service.has_connection(connection_id):
                return
            if self.service.reestablish_backup(connection_id):
                return
            if engine.now + interval <= self.scenario.duration:
                engine.schedule_after(interval, attempt)

        engine.schedule_after(interval, attempt)

    def _link_event(self, event):
        def action() -> None:
            if event.action == "fail":
                self.service.fail_link(event.link_id, reconfigure=True)
            else:
                self.service.repair_link(event.link_id)
            if self.check_invariants:
                self.service.check_invariants()

        return action

    def _snapshot(self, engine: Engine, observers, result: SimulationResult):
        def action() -> None:
            time = engine.now
            result.record_active_sample(
                time, self.service.active_connection_count
            )
            for observer in observers:
                observer.on_snapshot(self.service, time)

        return action
