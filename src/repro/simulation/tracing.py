"""Structured event tracing.

A :class:`Tracer` collects timestamped, typed events from a service as
a simulation runs — admissions, rejections, releases, failures,
activations — for debugging, auditing and post-hoc analysis (e.g.
"which failure killed connection 814 and why").  Events serialize to
JSON-lines so long runs can stream to disk.

The service emits through :class:`TracingService`, a thin decorator
that wraps any :class:`~repro.core.service.DRTPService`; the core
stays trace-free.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from ..core.service import DRTPService

#: Event kind identifiers.
ADMITTED = "admitted"
REJECTED = "rejected"
RELEASED = "released"
LINK_FAILED = "link-failed"
LINK_REPAIRED = "link-repaired"
RECOVERY = "recovery"
DEGRADED_ADMIT = "degraded-admit"
BACKUP_REESTABLISHED = "backup-reestablished"
FAULT_INJECTED = "fault-injected"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence."""

    time: float
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {"time": self.time, "kind": self.kind}
        payload.update(self.details)
        return json.dumps(payload, sort_keys=True)


class Tracer:
    """An in-memory, optionally-filtered event collector.

    ``max_events`` bounds memory on long campaigns: when set, the
    tracer becomes a ring buffer keeping only the *newest* events and
    counting how many it evicted (:attr:`dropped`).  ``None`` (the
    default) keeps everything, as before.
    """

    def __init__(
        self,
        kinds: Optional[List[str]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(
                "max_events must be >= 1 when given, got {}".format(
                    max_events
                )
            )
        self._kinds = set(kinds) if kinds is not None else None
        self.max_events = max_events
        self._events: "deque" = deque(maxlen=max_events)
        #: Events evicted from the ring buffer (0 while unbounded).
        self.dropped = 0

    def record(self, time: float, kind: str, **details: Any) -> None:
        if self._kinds is not None and kind not in self._kinds:
            return
        if (
            self.max_events is not None
            and len(self._events) == self.max_events
        ):
            self.dropped += 1  # deque(maxlen) evicts the oldest below
        self._events.append(TraceEvent(time=time, kind=kind, details=details))

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def counts(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for event in self._events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram

    def write_jsonl(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            "".join(event.to_json() + "\n" for event in self._events)
        )

    @staticmethod
    def read_jsonl(path: Union[str, Path]) -> List[TraceEvent]:
        events = []
        for line in Path(path).read_text().splitlines():
            payload = json.loads(line)
            time = payload.pop("time")
            kind = payload.pop("kind")
            events.append(TraceEvent(time=time, kind=kind, details=payload))
        return events


class TracingService:
    """Decorator adding tracing to a DRTP service.

    Exposes the same lifecycle surface the simulator drives (``admit``,
    ``release``, ``fail_link``, ``repair_link``) plus attribute
    pass-through for everything else, so it can stand in for a bare
    service anywhere.
    """

    def __init__(self, service: DRTPService, tracer: Tracer) -> None:
        self._service = service
        self.tracer = tracer
        self._clock = 0.0

    def at(self, time: float) -> "TracingService":
        """Set the timestamp attached to subsequent events."""
        self._clock = time
        return self

    # -- traced operations ------------------------------------------------
    def admit(self, request):
        decision = self._service.admit(request)
        if decision.accepted:
            conn = decision.connection
            self.tracer.record(
                self._clock,
                ADMITTED,
                connection=conn.connection_id,
                source=conn.source,
                destination=conn.destination,
                primary_hops=conn.primary_route.hop_count,
                backups=conn.backup_count,
            )
            if decision.degraded:
                self.tracer.record(
                    self._clock,
                    DEGRADED_ADMIT,
                    connection=conn.connection_id,
                )
        else:
            self.tracer.record(
                self._clock,
                REJECTED,
                request=request.request_id,
                reason=decision.reason,
            )
        return decision

    def release(self, connection_id: int) -> None:
        self._service.release(connection_id)
        self.tracer.record(self._clock, RELEASED, connection=connection_id)

    def fail_link(self, link_id: int, reconfigure: bool = True):
        impact = self._service.fail_link(link_id, reconfigure=reconfigure)
        self.tracer.record(
            self._clock,
            LINK_FAILED,
            link=link_id,
            affected=impact.affected,
            activated=impact.activated,
            lost=impact.failed,
        )
        for outcome in impact.outcomes:
            self.tracer.record(
                self._clock,
                RECOVERY,
                connection=outcome.connection_id,
                success=outcome.success,
                reason=outcome.reason,
                backup_index=outcome.backup_index,
            )
        return impact

    def repair_link(self, link_id: int) -> None:
        self._service.repair_link(link_id)
        self.tracer.record(self._clock, LINK_REPAIRED, link=link_id)

    def reestablish_backup(self, connection_id: int) -> bool:
        restored = self._service.reestablish_backup(connection_id)
        if restored:
            self.tracer.record(
                self._clock, BACKUP_REESTABLISHED, connection=connection_id
            )
        return restored

    def record_fault(self, kind: str, **details) -> None:
        """Log one injected fault (called by the chaos runner)."""
        self.tracer.record(self._clock, FAULT_INJECTED, fault=kind, **details)

    # -- pass-through ------------------------------------------------------
    def __getattr__(self, name: str):
        return getattr(self._service, name)
