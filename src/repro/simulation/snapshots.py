"""Steady-state snapshot scheduling.

Connection lifetimes average 40 minutes, so the connection population
needs a warm-up of a few lifetimes before it reaches the stationary
regime the paper measures in.  Metrics are then sampled at several
evenly-spaced instants and averaged, which both reduces variance and
captures the population's churn.
"""

from __future__ import annotations

from typing import List


def snapshot_times(
    duration: float, warmup: float, count: int
) -> List[float]:
    """``count`` instants evenly spaced over ``[warmup, duration]``.

    The first snapshot lands at ``warmup`` plus one spacing step (the
    instant ``warmup`` itself is still transient-adjacent), the last at
    ``duration``.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not 0 <= warmup < duration:
        raise ValueError(
            "warmup must lie in [0, duration), got {} for duration {}".format(
                warmup, duration
            )
        )
    if count < 1:
        raise ValueError("need at least one snapshot")
    span = duration - warmup
    step = span / count
    return [warmup + step * (index + 1) for index in range(count)]
