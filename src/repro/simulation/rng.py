"""Deterministic random-stream derivation.

Every stochastic component (topology placement, arrival process,
traffic pattern, lifetimes) draws from its own named stream derived
from one master seed, so that e.g. changing the arrival rate never
perturbs the topology, and a scenario regenerated from its recorded
seed is bit-identical.  Derivation hashes the seed and the stream name
with SHA-256 (``hash()`` is process-salted and unusable here).
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, *names: object) -> int:
    """Derive a child seed from a master seed and a name path."""
    digest = hashlib.sha256(
        "|".join([str(master_seed)] + [str(name) for name in names]).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def seeded_rng(master_seed: int, *names: object) -> random.Random:
    """An independent ``random.Random`` for the given stream name."""
    return random.Random(derive_seed(master_seed, *names))
