"""Deterministic random-stream derivation.

Every stochastic component (topology placement, arrival process,
traffic pattern, lifetimes) draws from its own named stream derived
from one master seed, so that e.g. changing the arrival rate never
perturbs the topology, and a scenario regenerated from its recorded
seed is bit-identical.  Derivation hashes the seed and the stream name
with SHA-256 (``hash()`` is process-salted and unusable here).
"""

from __future__ import annotations

import hashlib
import random


def _encode_component(component: str) -> str:
    """Escape a path component so the joined encoding is injective.

    A bare ``"|".join`` would make ``("a|b",)`` and ``("a", "b")``
    derive the same seed; escaping the separator (and the escape
    character itself) inside each component removes the ambiguity.
    Components free of ``|`` and ``\\`` — every stream name this
    repository has ever used — encode to themselves, so all committed
    fingerprints (golden traces, EXPERIMENTS.md numbers) are
    unchanged.
    """
    return component.replace("\\", "\\\\").replace("|", "\\|")


def derive_seed(master_seed: int, *names: object) -> int:
    """Derive a child seed from a master seed and a name path."""
    digest = hashlib.sha256(
        "|".join(
            _encode_component(str(part)) for part in (master_seed, *names)
        ).encode()
    ).digest()
    return int.from_bytes(digest[:8], "big")


def seeded_rng(master_seed: int, *names: object) -> random.Random:
    """An independent ``random.Random`` for the given stream name."""
    return random.Random(derive_seed(master_seed, *names))
