"""Arrival and holding-time processes.

Section 6.1: "we assume that DR-connection requests arrive as a
Poisson process with rate lambda ... each connection requires a
constant bandwidth (bw_req) and has a uniformly-distributed lifetime,
t_req, between 20 and 60 minutes."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class HoldingTimeDistribution:
    """Uniform connection lifetime in seconds (paper: 20–60 min)."""

    minimum: float = 20.0 * 60.0
    maximum: float = 60.0 * 60.0

    def __post_init__(self) -> None:
        if self.minimum <= 0 or self.maximum < self.minimum:
            raise ValueError(
                "invalid holding-time range [{}, {}]".format(
                    self.minimum, self.maximum
                )
            )

    @property
    def mean(self) -> float:
        return 0.5 * (self.minimum + self.maximum)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.minimum, self.maximum)


class PoissonArrivalProcess:
    """Exponential inter-arrival times with rate ``lam`` (per second)."""

    def __init__(self, lam: float, rng: random.Random) -> None:
        if lam <= 0:
            raise ValueError("arrival rate must be positive, got {}".format(lam))
        self.lam = lam
        self._rng = rng

    def next_interarrival(self) -> float:
        return self._rng.expovariate(self.lam)

    def arrival_times(self, until: float) -> Iterator[float]:
        """Yield arrival instants in ``(0, until]``."""
        if until <= 0:
            raise ValueError("horizon must be positive, got {}".format(until))
        now = 0.0
        while True:
            now += self.next_interarrival()
            if now > until:
                return
            yield now

    def expected_offered_load(self, mean_holding: float) -> float:
        """Little's-law mean number of concurrent connections if none
        were blocked: ``lambda x mean holding time``.  Used to sanity-
        check saturation calibration."""
        return self.lam * mean_holding
