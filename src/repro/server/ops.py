"""Service-level mutation commits shared by every control-plane shape.

The single-process :class:`~repro.server.app.ControlPlaneServer` and
the sharded :mod:`repro.cluster` commit authority must produce
byte-identical protocol results for the same operation against the
same service state — that equality is what the cluster differential
oracle checks.  Keeping the service-call-plus-result-shaping here, in
one place, makes it true by construction rather than by duplication.
"""

from __future__ import annotations

from typing import Any, Dict

from ..core.errors import ConnectionStateError
from ..core.service import DRTPService
from ..routing.base import RoutePlan


def admit_result(decision) -> Dict[str, Any]:
    """The protocol result payload for an admission decision."""
    result: Dict[str, Any] = {
        "accepted": decision.accepted,
        "reason": decision.reason,
    }
    if decision.accepted:
        connection = decision.connection
        result.update(
            connection=connection.connection_id,
            degraded=decision.degraded,
            primary_hops=connection.primary_route.hop_count,
            backup_hops=(
                connection.backup_route.hop_count
                if connection.backup_route is not None else 0
            ),
        )
    return result


def apply_admit(service: DRTPService, args: Dict[str, Any]) -> Dict[str, Any]:
    """Commit an admission the single-writer way: the service plans
    against its own (live) database and reserves in one step."""
    hold = args.get("hold")
    decision = service.request(
        args["source"], args["destination"], args["bw"],
        holding_time=float("inf") if hold is None else hold,
        request_id=args.get("request_id"),
    )
    return admit_result(decision)


def apply_admit_planned(
    service: DRTPService, args: Dict[str, Any], plan: RoutePlan
) -> Dict[str, Any]:
    """Commit an admission whose plan was computed elsewhere (an
    admission shard's epoch replica, or the authority's own replan)."""
    hold = args.get("hold")
    decision = service.request_planned(
        args["source"], args["destination"], args["bw"], plan,
        holding_time=float("inf") if hold is None else hold,
        request_id=args.get("request_id"),
    )
    return admit_result(decision)


def apply_release(service: DRTPService, connection_id: int) -> Dict[str, Any]:
    """Release a connection.  Idempotent by design: the connection may
    have been torn down by a failure between the client's admit and
    this release, so "already gone" is a normal outcome, not a
    protocol error."""
    try:
        service.release(connection_id)
    except ConnectionStateError:
        return {"released": False, "connection": connection_id}
    return {"released": True, "connection": connection_id}


def apply_fail_link(service: DRTPService, link: int) -> Dict[str, Any]:
    """Fail a link and report the blast radius."""
    impact = service.fail_link(link)
    return {
        "link": link,
        "affected": impact.affected,
        "activated": impact.activated,
        "lost": impact.failed,
    }


def apply_repair_link(service: DRTPService, link: int) -> Dict[str, Any]:
    """Repair a link (idempotent), reporting whether it was failed."""
    was_failed = service.state.is_link_failed(link)
    service.repair_link(link)
    return {"link": link, "repaired": True, "was_failed": was_failed}
