"""ControlPlaneServer — the online DRTP admission service.

Concurrency model
-----------------

One asyncio event loop, one **writer task**.  Client connections are
handled concurrently, but every mutating operation (``admit``,
``release``, ``fail_link``, ``repair_link``) is enqueued onto a single
mutation queue and applied by the writer task in arrival order — the
shared :class:`~repro.core.service.DRTPService` and its
:class:`~repro.network.database.LinkStateDatabase` are only ever
touched from that one task, so the deterministic, synchronous core
needs no locks and observes a single serialized history.  Read
operations (``status``, ``metrics``, ``ping``) are answered directly
from the connection handler: the loop never yields mid-mutation, so
reads are always consistent.

The writer drains the queue in batches and performs at most **one**
link-state refresh per batch (snapshot-mode databases re-flood before
admissions route; back-to-back admissions in one batch share the
refresh instead of each paying for its own) — the
``drtp_server_db_refreshes_coalesced_total`` counter records how many
redundant re-floods this saves.

Shutdown
--------

On SIGTERM/SIGINT (or :meth:`request_shutdown`) the server stops
accepting connections, lets every in-flight request finish and be
answered, drains the mutation queue, closes client connections, writes
the final metrics manifest, and exits cleanly — the contract the
load-generator drain test enforces.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket as socket_module
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..metrics import ServiceMetrics
from ..observability import TraceCollector, write_chrome_trace, write_ndjson
from . import ops, protocol
from .protocol import ProtocolError, Request

__all__ = ["ControlPlaneServer", "ServerStats"]

_SENTINEL = object()


class _ClientState:
    """Per-connection drain bookkeeping."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer) -> None:
        self.writer = writer
        self.busy = False

#: Manifest schema version.
MANIFEST_VERSION = 1


@dataclass
class ServerStats:
    """Plain counters mirrored into the metrics registry and the
    final manifest."""

    ops: Dict[str, int] = field(default_factory=dict)
    protocol_errors: int = 0
    internal_errors: int = 0
    connections_total: int = 0
    refreshes: int = 0
    refreshes_coalesced: int = 0
    batches: int = 0
    drained_clean: bool = False

    def record_op(self, op: str) -> None:
        self.ops[op] = self.ops.get(op, 0) + 1

    @property
    def requests_total(self) -> int:
        return sum(self.ops.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests_total": self.requests_total,
            "ops": dict(sorted(self.ops.items())),
            "protocol_errors": self.protocol_errors,
            "internal_errors": self.internal_errors,
            "connections_total": self.connections_total,
            "refreshes": self.refreshes,
            "refreshes_coalesced": self.refreshes_coalesced,
            "batches": self.batches,
            "drained_clean": self.drained_clean,
        }


class ControlPlaneServer:
    """Serve one DRTP service over NDJSON on TCP or a Unix socket."""

    def __init__(
        self,
        service,
        metrics: Optional[ServiceMetrics] = None,
        *,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        manifest_path: Optional[str] = None,
        trace: Optional[TraceCollector] = None,
        trace_dir: Optional[str] = None,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ValueError(
                "exactly one of socket_path or host must be given"
            )
        self.service = service
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        if getattr(service, "metrics", None) is None:
            # The service was built un-instrumented; bind the collected
            # gauges at least, so status/metrics read something real.
            self.metrics.bind_service(service)
        if trace is None and trace_dir is not None:
            # Bounded by default: a long-lived server must not grow its
            # trace without limit (evictions are counted, not silent).
            trace = TraceCollector(max_spans=100_000)
        self.trace = trace
        self.trace_dir = trace_dir
        if trace is not None and getattr(service, "trace", None) is None:
            binder = getattr(service, "bind_trace", None)
            if binder is not None:
                # Thread the collector through the whole service stack
                # (routing scheme, admission, signaling) so server op
                # spans nest the core's spans under them.
                binder(trace)
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.manifest_path = manifest_path
        self.stats = ServerStats()

        registry = self.metrics.registry
        self._m_requests = registry.counter(
            "drtp_server_requests_total",
            "protocol requests received", labels=("op",),
        )
        self._m_protocol_errors = registry.counter(
            "drtp_server_protocol_errors_total",
            "malformed or invalid protocol requests",
        )
        self._m_connections = registry.counter(
            "drtp_server_connections_total", "client connections accepted",
        )
        self._m_refreshes_coalesced = registry.counter(
            "drtp_server_db_refreshes_coalesced_total",
            "redundant link-state refreshes avoided by batch coalescing",
        )
        self._m_queue_depth = registry.gauge(
            "drtp_server_mutation_queue_depth",
            "mutations queued for the writer task",
        )

        self._server: Optional[asyncio.AbstractServer] = None
        self._mutations: "asyncio.Queue" = asyncio.Queue()
        self._writer_task: Optional[asyncio.Task] = None
        self._client_tasks: set = set()
        self._clients: set = set()
        self._finished = asyncio.Event()
        self._stopping = False
        self._shutdown_started = False
        self._started_monotonic = 0.0
        self._started_wall = 0.0
        self._exit_reason = ""
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._mutation_handlers = {
            "admit": self._op_admit,
            "release": self._op_release,
            "fail_link": self._op_fail_link,
            "repair_link": self._op_repair_link,
        }
        self._m_queue_depth.collect_with(self._mutations.qsize)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def endpoint(self) -> str:
        """Human-readable address the server is bound to."""
        if self.socket_path is not None:
            return "unix:{}".format(self.socket_path)
        return "tcp:{}:{}".format(self.host, self.port)

    @property
    def stopping(self) -> bool:
        return self._stopping

    async def start(self) -> None:
        """Bind the listening socket and start the writer task."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_event_loop()
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()
        if self.socket_path is not None:
            path = Path(self.socket_path)
            if path.exists():
                # A stale socket from a crashed predecessor; a live one
                # would be connectable, so probe before unlinking.
                if _unix_socket_is_live(str(path)):
                    raise RuntimeError(
                        "socket {} is already being served".format(path)
                    )
                path.unlink()
            path.parent.mkdir(parents=True, exist_ok=True)
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=str(path)
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port
            )
            if self.port == 0:
                self.port = self._server.sockets[0].getsockname()[1]
        self._writer_task = asyncio.ensure_future(self._writer_loop())

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, self.request_shutdown, signal.Signals(sig).name
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-Unix event loops

    def request_shutdown(self, reason: str = "requested") -> None:
        """Begin a graceful drain; safe to call from a signal handler
        (idempotent, returns immediately)."""
        if self._shutdown_started:
            return
        self._shutdown_started = True
        self._exit_reason = reason
        asyncio.ensure_future(self.shutdown())

    async def serve_until_shutdown(self, install_signals: bool = True) -> None:
        """Start (if needed), then block until the drain completes."""
        if self._server is None:
            await self.start()
        if install_signals:
            self.install_signal_handlers()
        await self._finished.wait()

    async def shutdown(self) -> None:
        """Graceful drain: refuse new connections, finish in-flight
        requests, drain the mutation queue, write the manifest."""
        self._shutdown_started = True
        self._stopping = True
        if self._server is not None:
            self._server.close()
        # Wake handlers parked in read() by closing their (idle)
        # transports; this loop runs without awaiting, so a handler
        # cannot become busy between the check and the close.  Busy
        # handlers keep their sockets: they finish the request they
        # are processing (the still-running writer task resolves its
        # queued mutation), answer it, then exit their read loop.
        for client in list(self._clients):
            if not client.busy:
                client.writer.close()
        if self._client_tasks:
            await asyncio.gather(
                *tuple(self._client_tasks), return_exceptions=True
            )
        if self._server is not None:
            # Only after the handlers are done: on Python >= 3.12.1
            # wait_closed() blocks until every client connection is
            # closed, so awaiting it before waking idle handlers would
            # deadlock the drain on any idle-but-connected client.
            await self._server.wait_closed()
        await self._mutations.put(_SENTINEL)
        if self._writer_task is not None:
            await self._writer_task
        self.stats.drained_clean = self._mutations.empty()
        if self.socket_path is not None:
            try:
                Path(self.socket_path).unlink()
            except OSError:
                pass
        if self.trace is not None and self.trace_dir is not None:
            self.write_trace(self.trace_dir)
        if self.manifest_path is not None:
            self.write_manifest(self.manifest_path)
        self._finished.set()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def manifest(self) -> Dict[str, Any]:
        counters = self.service.counters
        return {
            "version": MANIFEST_VERSION,
            "endpoint": self.endpoint,
            "scheme": self.service.scheme.name,
            "started_at": self._started_wall,
            "wall_seconds": time.monotonic() - self._started_monotonic,
            "exit_reason": self._exit_reason,
            "server": self.stats.to_dict(),
            "service": {
                "requests": counters.requests,
                "accepted": counters.accepted,
                "rejected": dict(counters.rejected),
                "released": counters.released,
                "acceptance_ratio": counters.acceptance_ratio,
                "degraded_admissions": counters.degraded_admissions,
                "backups_reestablished": counters.backups_reestablished,
                "reestablish_attempts": counters.reestablish_attempts,
                "active_connections": self.service.active_connection_count,
                "unprotected": len(self.service.unprotected_ids()),
                "pending_backups": len(self.service.pending_backup_ids()),
            },
            "metrics": self.metrics.registry.snapshot(),
        }

    def write_trace(self, directory: str) -> Dict[str, str]:
        """Export the collected spans into ``directory`` as both a
        Perfetto-loadable Chrome trace and an NDJSON stream; returns
        the paths written (empty when no collector is bound)."""
        if self.trace is None:
            return {}
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        chrome = target / "server_trace.json"
        ndjson = target / "server_trace.ndjson"
        write_chrome_trace(chrome, self.trace, label="drtp-server")
        write_ndjson(ndjson, self.trace, label="drtp-server")
        return {"chrome": str(chrome), "ndjson": str(ndjson)}

    def write_manifest(self, path: str) -> None:
        """Atomic write so a reader never sees a torn manifest."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(self.manifest(), indent=2, sort_keys=True))
        os.replace(tmp, target)

    # ------------------------------------------------------------------
    # Client handling
    # ------------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        state = _ClientState(writer)
        self._client_tasks.add(task)
        self._clients.add(state)
        self.stats.connections_total += 1
        self._m_connections.inc()
        buffer = b""
        try:
            # Chunked reads instead of per-line reads: a pipelined
            # burst arrives as one chunk, is dispatched as one batch
            # (whose mutations the writer task then drains — and
            # refresh-coalesces — together), and is answered with one
            # write.  Drain wake-up comes from shutdown() closing idle
            # transports (read then returns b''); a handler mid-batch
            # is left alone: it answers, loops, sees _stopping, exits.
            while not self._stopping:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                buffer += chunk
                if b"\n" not in chunk:
                    continue
                lines = buffer.split(b"\n")
                buffer = lines.pop()  # partial trailing line, if any
                state.busy = True
                payload = await self._dispatch_batch(lines)
                if payload:
                    writer.write(payload)
                    await writer.drain()
                state.busy = False
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            state.busy = False
            self._clients.discard(state)
            self._client_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_batch(self, lines) -> bytes:
        """Decode and answer one pipelined burst, in order.

        With a trace collector bound the burst becomes a
        ``server.batch`` span; each handler task carries its own
        contextvar copy, so concurrently dispatched batches keep their
        span trees separate."""
        if self.trace is None:
            return await self._run_batch(lines)
        with self.trace.span(
            "server.batch", category="server", lines=len(lines)
        ) as span:
            payload = await self._run_batch(lines)
            span.tag(response_bytes=len(payload))
        return payload

    async def _run_batch(self, lines) -> bytes:
        """Mutations are enqueued up front so the writer task drains
        them as one batch; read ops wait for the connection's own
        pending mutations first, preserving per-connection program
        order.  Each op carries a two-phase ``server.op`` span from
        enqueue to response; the writer parents its ``server.apply``
        span to it across the task boundary."""
        trace = self.trace
        entries = []  # (request, future, op span, pre-encoded response)
        pending_last = None
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                request = protocol.decode_request(
                    raw.decode("utf-8", errors="replace")
                )
            except ProtocolError as exc:
                self.stats.protocol_errors += 1
                self._m_protocol_errors.inc()
                entries.append((None, None, None, protocol.encode_response(
                    exc.request_id, False,
                    error_kind=exc.kind, error_message=str(exc),
                )))
                continue
            self.stats.record_op(request.op)
            self._m_requests.inc(1, request.op)
            op_span = None
            if trace is not None:
                # Two-phase: started here, finished when the response
                # is known — for mutations that is after the writer
                # task resolved the future.  The label name ``op``
                # matches the drtp_server_requests_total{op=} metric.
                op_span = trace.span(
                    "server.op", category="server", op=request.op
                ).start_now()
            if request.op in protocol.READ_OPS:
                if pending_last is not None:
                    # FIFO writer: once the connection's most recent
                    # mutation resolved, all its earlier ones have too.
                    try:
                        await pending_last
                    except Exception:
                        pass  # reported via its own response below
                ok = True
                try:
                    result = self._apply_read(request)
                    encoded = protocol.encode_response(
                        request.id, True, result
                    )
                except ProtocolError as exc:
                    ok = False
                    self.stats.protocol_errors += 1
                    self._m_protocol_errors.inc()
                    encoded = protocol.encode_response(
                        request.id, False,
                        error_kind=exc.kind, error_message=str(exc),
                    )
                except Exception as exc:
                    # A failing gauge collector or status counter must
                    # not kill the handler task: the pipelined client
                    # would wait forever for its remaining responses.
                    ok = False
                    self.stats.internal_errors += 1
                    encoded = protocol.encode_response(
                        request.id, False,
                        error_kind=protocol.ERR_INTERNAL,
                        error_message=repr(exc),
                    )
                if op_span is not None:
                    op_span.finish(ok=ok)
                entries.append((None, None, None, encoded))
                continue
            future = self._loop.create_future()
            pending_last = future
            await self._mutations.put((request, future, op_span))
            entries.append((request, future, op_span, None))
        out = []
        for request, future, op_span, encoded in entries:
            if encoded is not None:
                out.append(encoded)
                continue
            ok = True
            try:
                result = await future
                out.append(protocol.encode_response(
                    request.id, True, result
                ))
            except ProtocolError as exc:
                ok = False
                self.stats.protocol_errors += 1
                self._m_protocol_errors.inc()
                out.append(protocol.encode_response(
                    request.id, False,
                    error_kind=exc.kind, error_message=str(exc),
                ))
            except Exception as exc:  # pragma: no cover - defensive
                ok = False
                self.stats.internal_errors += 1
                out.append(protocol.encode_response(
                    request.id, False,
                    error_kind=protocol.ERR_INTERNAL,
                    error_message=repr(exc),
                ))
            if op_span is not None:
                op_span.finish(ok=ok)
        return b"".join(out)

    # ------------------------------------------------------------------
    # The single writer
    # ------------------------------------------------------------------
    async def _writer_loop(self) -> None:
        while True:
            item = await self._mutations.get()
            if item is _SENTINEL:
                return
            batch = [item]
            stop_after_batch = False
            while not self._mutations.empty():
                extra = self._mutations.get_nowait()
                if extra is _SENTINEL:
                    stop_after_batch = True
                    break
                batch.append(extra)
            self.stats.batches += 1
            self._coalesced_refresh(batch)
            for request, future, op_span in batch:
                if future.cancelled():  # pragma: no cover - defensive
                    continue
                try:
                    if op_span is None:
                        future.set_result(self._apply_mutation(request))
                    else:
                        # Explicit parent: this span lives on the
                        # writer task but belongs to the handler's
                        # server.op — the core's service.* spans then
                        # nest under it via the writer's contextvars.
                        with self.trace.span(
                            "server.apply", category="server",
                            parent=op_span, op=request.op,
                        ):
                            result = self._apply_mutation(request)
                        future.set_result(result)
                except ProtocolError as exc:
                    future.set_exception(exc)
                except Exception as exc:  # pragma: no cover - defensive
                    future.set_exception(exc)
            if stop_after_batch:
                return

    def _coalesced_refresh(self, batch) -> None:
        """One re-flood serves every admission in the batch.

        Live databases converge instantly (refresh is a no-op), so
        only snapshot-mode services pay — and they pay once per batch
        instead of once per admission."""
        if self.service.database.live:
            return
        admits = sum(1 for request, _, _ in batch if request.op == "admit")
        if admits == 0:
            return
        self.service.refresh_database()
        self.stats.refreshes += 1
        if admits > 1:
            self.stats.refreshes_coalesced += admits - 1
            self._m_refreshes_coalesced.inc(admits - 1)

    def _apply_mutation(self, request: Request) -> Dict[str, Any]:
        return self._mutation_handlers[request.op](request)

    # -- mutating ops ---------------------------------------------------
    def _parse_admit(self, request: Request) -> Dict[str, Any]:
        """Validate an admit's arguments into the canonical args dict
        consumed by :mod:`repro.server.ops` (and, in cluster mode, by
        the admission shards before any plan is attempted)."""
        args = request.args
        source = protocol.require_int(args, "source", request.id)
        destination = protocol.require_int(args, "destination", request.id)
        bw = protocol.require_number(args, "bw", request.id)
        num_nodes = self.service.network.num_nodes
        for name, node in (("source", source), ("destination", destination)):
            if not 0 <= node < num_nodes:
                raise ProtocolError(
                    protocol.ERR_BAD_REQUEST,
                    "{} {} outside [0, {})".format(name, node, num_nodes),
                    request.id,
                )
        if source == destination:
            raise ProtocolError(
                protocol.ERR_BAD_REQUEST,
                "source and destination must differ", request.id,
            )
        if bw <= 0:
            raise ProtocolError(
                protocol.ERR_BAD_REQUEST, "bw must be positive", request.id,
            )
        parsed: Dict[str, Any] = {
            "source": source, "destination": destination, "bw": bw,
        }
        if args.get("hold") is not None:
            parsed["hold"] = protocol.require_number(args, "hold", request.id)
        if args.get("request_id") is not None:
            parsed["request_id"] = protocol.require_int(
                args, "request_id", request.id
            )
        return parsed

    def _op_admit(self, request: Request) -> Dict[str, Any]:
        return ops.apply_admit(self.service, self._parse_admit(request))

    def _op_release(self, request: Request) -> Dict[str, Any]:
        connection_id = protocol.require_int(
            request.args, "connection", request.id
        )
        return ops.apply_release(self.service, connection_id)

    def _require_link(self, request: Request) -> int:
        link = protocol.require_int(request.args, "link", request.id)
        if not 0 <= link < self.service.network.num_links:
            raise ProtocolError(
                protocol.ERR_BAD_REQUEST,
                "link {} outside [0, {})".format(
                    link, self.service.network.num_links
                ),
                request.id,
            )
        return link

    def _op_fail_link(self, request: Request) -> Dict[str, Any]:
        return ops.apply_fail_link(self.service, self._require_link(request))

    def _op_repair_link(self, request: Request) -> Dict[str, Any]:
        return ops.apply_repair_link(self.service, self._require_link(request))

    # -- read ops -------------------------------------------------------
    def _apply_read(self, request: Request) -> Dict[str, Any]:
        if request.op == "ping":
            return {"pong": True, "draining": self._stopping}
        if request.op == "status":
            return self._op_status()
        return self._op_metrics(request)

    def _op_status(self) -> Dict[str, Any]:
        counters = self.service.counters
        network = self.service.network
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "scheme": self.service.scheme.name,
            "nodes": network.num_nodes,
            "links": network.num_links,
            "live_database": self.service.database.live,
            "active_connections": self.service.active_connection_count,
            "unprotected": len(self.service.unprotected_ids()),
            "pending_backups": len(self.service.pending_backup_ids()),
            "draining": self._stopping,
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "counters": {
                "requests": counters.requests,
                "accepted": counters.accepted,
                "rejected": dict(counters.rejected),
                "released": counters.released,
                "acceptance_ratio": counters.acceptance_ratio,
                "degraded_admissions": counters.degraded_admissions,
                "reestablish_attempts": counters.reestablish_attempts,
                "backups_reestablished": counters.backups_reestablished,
                "reestablish_success_ratio":
                    counters.reestablish_success_ratio,
            },
            "server": self.stats.to_dict(),
        }

    def _op_metrics(self, request: Request) -> Dict[str, Any]:
        fmt = request.args.get("format", "prometheus")
        if fmt == "prometheus":
            return {
                "format": "prometheus",
                "body": self.metrics.registry.render_prometheus(),
            }
        if fmt == "json":
            return {
                "format": "json",
                "metrics": self.metrics.registry.snapshot(),
            }
        raise ProtocolError(
            protocol.ERR_BAD_REQUEST,
            "metrics format must be 'prometheus' or 'json', got {!r}".format(
                fmt
            ),
            request.id,
        )


def _unix_socket_is_live(path: str) -> bool:
    """True when something is actually accepting on the socket."""
    probe = socket_module.socket(
        socket_module.AF_UNIX, socket_module.SOCK_STREAM
    )
    try:
        probe.settimeout(0.25)
        probe.connect(path)
        return True
    except OSError:
        return False
    finally:
        probe.close()
