"""The control-plane wire protocol.

One JSON object per line in each direction (NDJSON).  Requests::

    {"op": "admit", "id": 7, "args": {"source": 3, "destination": 41,
                                      "bw": 1.0}}

``id`` is an optional client correlation token (any JSON scalar)
echoed verbatim in the response; clients that pipeline requests over
one connection use it to match answers.  Responses::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"type": "bad-request",
                                     "message": "..."}}

``ok: false`` means the *request* was invalid (malformed JSON, unknown
op, bad arguments, server draining) — a protocol error.  Domain
outcomes that are part of normal operation (a rejected admission, a
release of an already-departed connection) are ``ok: true`` with the
outcome in ``result``; a load test against a healthy server must see
zero protocol errors even when the network itself is saturated or
failing.

The protocol is deliberately order-preserving per connection: the
server answers each connection's requests in arrival order, so one
pipelined client observes exactly the semantics of a sequential
:class:`~repro.core.service.DRTPService` — the property the
differential load-test check relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "MUTATING_OPS",
    "READ_OPS",
    "ProtocolError",
    "Request",
    "decode_request",
    "encode_request",
    "encode_response",
    "decode_response",
]

PROTOCOL_VERSION = 1

#: Operations that mutate the shared service — serialized through the
#: server's single writer task.
MUTATING_OPS = frozenset({"admit", "release", "fail_link", "repair_link"})

#: Operations answered directly from the event loop (consistent reads:
#: the loop is single-threaded and never yields mid-mutation).
READ_OPS = frozenset({"status", "metrics", "ping"})

OPS = MUTATING_OPS | READ_OPS

#: Error types carried in ``error.type``.
ERR_BAD_JSON = "bad-json"
ERR_BAD_REQUEST = "bad-request"
ERR_UNKNOWN_OP = "unknown-op"
ERR_DRAINING = "draining"
ERR_INTERNAL = "internal"


class ProtocolError(Exception):
    """A malformed or invalid request."""

    def __init__(self, kind: str, message: str,
                 request_id: Any = None) -> None:
        super().__init__(message)
        self.kind = kind
        self.request_id = request_id


@dataclass
class Request:
    """One decoded client request."""

    op: str
    args: Dict[str, Any] = field(default_factory=dict)
    id: Any = None


def decode_request(line: str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` with the
    best-effort correlation id so the error response can still be
    matched by the client."""
    try:
        payload = json.loads(line)
    except ValueError:
        raise ProtocolError(ERR_BAD_JSON, "request is not valid JSON")
    if not isinstance(payload, dict):
        raise ProtocolError(ERR_BAD_REQUEST, "request must be a JSON object")
    request_id = payload.get("id")
    if request_id is not None and not isinstance(
        request_id, (str, int, float, bool)
    ):
        raise ProtocolError(
            ERR_BAD_REQUEST, "request id must be a JSON scalar"
        )
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError(
            ERR_BAD_REQUEST, "request needs a string 'op'", request_id
        )
    if op not in OPS:
        raise ProtocolError(
            ERR_UNKNOWN_OP,
            "unknown op {!r} (valid: {})".format(op, ", ".join(sorted(OPS))),
            request_id,
        )
    args = payload.get("args", {})
    if not isinstance(args, dict):
        raise ProtocolError(
            ERR_BAD_REQUEST, "'args' must be a JSON object", request_id
        )
    return Request(op=op, args=args, id=request_id)


def encode_request(op: str, args: Optional[Dict[str, Any]] = None,
                   request_id: Any = None) -> bytes:
    """One request line, newline-terminated, ready for the socket."""
    payload: Dict[str, Any] = {"op": op}
    if request_id is not None:
        payload["id"] = request_id
    if args:
        payload["args"] = args
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def encode_response(request_id: Any, ok: bool,
                    result: Optional[Dict[str, Any]] = None,
                    error_kind: Optional[str] = None,
                    error_message: Optional[str] = None) -> bytes:
    """Encode one response line: ``{"id", "ok"}`` plus either a
    ``result`` object or an ``error`` envelope, newline-terminated."""
    payload: Dict[str, Any] = {"id": request_id, "ok": ok}
    if ok:
        payload["result"] = result if result is not None else {}
    else:
        payload["error"] = {
            "type": error_kind or ERR_INTERNAL,
            "message": error_message or "",
        }
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def decode_response(line: str) -> Tuple[Any, bool, Dict[str, Any]]:
    """Parse one response line into ``(id, ok, body)`` where ``body``
    is ``result`` on success and ``error`` on failure."""
    payload = json.loads(line)
    if not isinstance(payload, dict) or "ok" not in payload:
        raise ProtocolError(ERR_BAD_JSON, "malformed response line")
    ok = bool(payload["ok"])
    body = payload.get("result" if ok else "error") or {}
    return payload.get("id"), ok, body


# ----------------------------------------------------------------------
# Argument validation helpers (shared by the server's handlers)
# ----------------------------------------------------------------------
def require_int(args: Dict[str, Any], key: str, request_id: Any) -> int:
    """Extract an integer argument, raising ``bad_request`` when it is
    missing or not an int (bools are rejected, not coerced)."""
    value = args.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            ERR_BAD_REQUEST,
            "'{}' must be an integer, got {!r}".format(key, value),
            request_id,
        )
    return value


def require_number(args: Dict[str, Any], key: str, request_id: Any) -> float:
    """Extract a numeric argument as ``float``, raising ``bad_request``
    when it is missing or not an int/float (bools are rejected)."""
    value = args.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            ERR_BAD_REQUEST,
            "'{}' must be a number, got {!r}".format(key, value),
            request_id,
        )
    return float(value)
