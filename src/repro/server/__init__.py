"""Online DRTP control plane: asyncio server, protocol, load generator.

The paper's model is online — DR-connection requests arrive one at a
time against live link state — but until now the reproduction was only
drivable as an in-process library.  This package turns it into
something traffic can be pointed at:

* :mod:`repro.server.protocol` — the newline-delimited JSON request/
  response framing (``admit``, ``release``, ``fail_link``,
  ``repair_link``, ``status``, ``metrics``, ``ping``);
* :mod:`repro.server.app` — :class:`ControlPlaneServer`, an asyncio
  TCP/Unix-socket server whose single writer task serializes every
  mutation onto the shared :class:`~repro.core.service.DRTPService`
  while coalescing redundant link-state refreshes, with graceful
  SIGTERM drain and a final metrics manifest;
* :mod:`repro.server.loadgen` — a deterministic async load generator
  (Poisson arrivals, hold times, fault mix via
  :class:`~repro.faults.plan.FaultPlan`) plus a sequential reference
  replay for differential acceptance-ratio checks.

Everything is stdlib-only, like the rest of the control plane.
"""

from .protocol import (
    MUTATING_OPS,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from .app import ControlPlaneServer, ServerStats
from .loadgen import (
    LoadGenConfig,
    LoadGenerator,
    LoadReport,
    build_timeline,
    fetch_status,
    run_sequential_reference,
)

__all__ = [
    "MUTATING_OPS",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "ControlPlaneServer",
    "ServerStats",
    "LoadGenConfig",
    "LoadGenerator",
    "LoadReport",
    "build_timeline",
    "fetch_status",
    "run_sequential_reference",
]
