"""Deterministic async load generator for the control-plane server.

The generator does not improvise: it first *builds a timeline* — every
admission (Poisson arrivals, uniform endpoints, uniform hold times),
every departure, and every link flap from an optional
:class:`~repro.faults.plan.FaultPlan` — entirely from named seeded RNG
streams, then replays that timeline against the server over one
pipelined connection.  Because connection ids equal client-chosen
request ids and the server answers each connection's requests in
arrival order, the *same timeline* replayed directly against a
:class:`~repro.core.service.DRTPService`
(:func:`run_sequential_reference`) must reach the same decisions —
the differential check the loadtest CLI and CI smoke job enforce.

``time_scale`` maps virtual timeline seconds to wall seconds; ``0``
(the default for benchmarking) replays as fast as the pipe allows,
keeping at most ``max_inflight`` requests outstanding.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ConnectionStateError
from ..faults.injector import (
    BURST_DOWN,
    BURST_UP,
    FLAP_DOWN,
    FLAP_UP,
    REGIONAL_DOWN,
    REGIONAL_UP,
    FaultInjector,
)
from ..faults.plan import FaultPlan
from ..loadmodel.drift import DriftingHotspotTraffic, DriftParameters
from ..loadmodel.mmpp import MMPPArrivalProcess, MMPPParameters
from ..simulation.arrivals import (
    HoldingTimeDistribution,
    PoissonArrivalProcess,
)
from ..simulation.rng import derive_seed, seeded_rng
from . import protocol

__all__ = [
    "LoadGenConfig",
    "TimelineEvent",
    "build_timeline",
    "fetch_status",
    "LoadGenerator",
    "LoadReport",
    "run_sequential_reference",
]


async def fetch_status(
    *,
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
) -> Dict[str, Any]:
    """One-shot ``status`` query — how a client learns the topology
    dimensions it needs to build a timeline."""
    if socket_path is not None:
        reader, writer = await asyncio.open_unix_connection(socket_path)
    else:
        reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(protocol.encode_request("status", {}, request_id=0))
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed before answering status")
        _, ok, body = protocol.decode_response(line.decode())
        if not ok:
            raise ConnectionError(
                "status query failed: {}".format(body.get("message", "?"))
            )
        return body
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


@dataclass(frozen=True)
class LoadGenConfig:
    """Everything that determines the timeline, and nothing else."""

    arrival_rate: float = 40.0      # requests per virtual second
    duration: float = 60.0          # virtual seconds
    hold_min: float = 2.0           # virtual seconds
    hold_max: float = 6.0
    bw_req: float = 1.0
    master_seed: int = 0
    fault_plan: Optional[FaultPlan] = None
    #: "poisson" (the paper's process, uniform endpoints) or
    #: "production" (MMPP arrivals + drifting hot-spot endpoints from
    #: :mod:`repro.loadmodel`); both build fully pre-sampled timelines,
    #: so the sequential-reference verify works identically.
    workload: str = "poisson"
    mmpp: Optional[MMPPParameters] = None
    drift: Optional[DriftParameters] = None

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.hold_min <= 0 or self.hold_max < self.hold_min:
            raise ValueError(
                "invalid hold-time range [{}, {}]".format(
                    self.hold_min, self.hold_max
                )
            )
        if self.bw_req <= 0:
            raise ValueError("bw_req must be positive")
        if self.workload not in ("poisson", "production"):
            raise ValueError(
                "workload must be 'poisson' or 'production', got "
                "{!r}".format(self.workload)
            )

    def production_mmpp(self) -> MMPPParameters:
        """The MMPP driving a production timeline: explicit parameters
        or a bursty default whose sojourns fit the test duration
        (quarter-duration calm phases, one-twelfth bursts) so short
        loadtests still see several regime flips."""
        if self.mmpp is not None:
            return self.mmpp
        return MMPPParameters.bursty(
            self.arrival_rate,
            calm_mean=self.duration / 4.0,
            burst_mean=self.duration / 12.0,
        )

    def production_drift(self, num_nodes: int) -> DriftParameters:
        """The drift clock for a production timeline: explicit
        parameters or a default that migrates a 10-node (or smaller)
        hot set every sixth of the duration."""
        if self.drift is not None:
            return self.drift
        return DriftParameters(
            hot_count=min(10, num_nodes - 1),
            epoch_seconds=self.duration / 6.0,
        )


@dataclass(frozen=True)
class TimelineEvent:
    """One scheduled protocol operation."""

    time: float
    op: str
    args: Dict[str, Any]


class _TopologyCounts:
    """Duck-typed stand-in for a Network when only the counts matter
    (uncorrelated fault schedules)."""

    def __init__(self, num_nodes: int, num_links: int) -> None:
        self.num_nodes = num_nodes
        self.num_links = num_links


def build_timeline(
    config: LoadGenConfig,
    num_nodes: int,
    num_links: int,
    network=None,
    risk_groups=None,
) -> List[TimelineEvent]:
    """Pre-sample the full operation sequence, sorted by virtual time.

    ``network`` is only needed when the fault plan uses *correlated*
    failure bursts (they pick the links of one switch) or regional
    neighborhood cuts (they flood-fill the topology); link flaps and
    uncorrelated bursts are sampled from the counts alone, which a
    client can learn from the server's ``status`` op.  ``risk_groups``
    (a :class:`~repro.topology.srlg.RiskGroupSet`) is additionally
    required for regional faults in ``srlg`` mode — pass it alongside
    the network (e.g. ``loadtest --topology --srlg``).
    """
    if num_nodes < 2:
        raise ValueError("need at least 2 nodes to route between")
    events: List[Tuple[float, int, TimelineEvent]] = []
    order = 0

    if config.workload == "production":
        arrival_iter = MMPPArrivalProcess(
            config.production_mmpp(),
            seeded_rng(config.master_seed, "loadgen", "arrivals"),
            seeded_rng(config.master_seed, "loadgen", "phases"),
        ).arrival_times(config.duration)
        pattern: Optional[DriftingHotspotTraffic] = DriftingHotspotTraffic(
            num_nodes,
            config.production_drift(num_nodes),
            derive_seed(config.master_seed, "loadgen"),
        )
    else:
        arrival_iter = PoissonArrivalProcess(
            config.arrival_rate,
            seeded_rng(config.master_seed, "loadgen", "arrivals"),
        ).arrival_times(config.duration)
        pattern = None
    endpoints = seeded_rng(config.master_seed, "loadgen", "endpoints")
    holds = HoldingTimeDistribution(config.hold_min, config.hold_max)
    hold_rng = seeded_rng(config.master_seed, "loadgen", "holds")

    request_id = 0
    for arrival in arrival_iter:
        if pattern is not None:
            source, destination = pattern.sample_pair_at(endpoints, arrival)
        else:
            source = endpoints.randrange(num_nodes)
            destination = endpoints.randrange(num_nodes - 1)
            if destination >= source:
                destination += 1
        hold = holds.sample(hold_rng)
        events.append((arrival, order, TimelineEvent(
            time=arrival,
            op="admit",
            args={
                "source": source,
                "destination": destination,
                "bw": config.bw_req,
                "hold": hold,
                "request_id": request_id,
            },
        )))
        order += 1
        departure = arrival + hold
        if departure <= config.duration:
            # Released via the admit's request id — connection ids
            # equal request ids, so no response round-trip is needed
            # before the release can be pipelined.
            events.append((departure, order, TimelineEvent(
                time=departure,
                op="release",
                args={"connection": request_id},
            )))
            order += 1
        request_id += 1

    plan = config.fault_plan
    if plan is not None and (
        plan.flaps.enabled or plan.bursts.enabled or plan.regional.enabled
    ):
        if network is None:
            if plan.bursts.enabled and plan.bursts.correlated:
                raise ValueError(
                    "correlated failure bursts need the real topology; "
                    "pass network= (e.g. loadtest --topology)"
                )
            if plan.regional.enabled:
                raise ValueError(
                    "regional faults need the real topology; pass "
                    "network= (e.g. loadtest --topology)"
                )
            network = _TopologyCounts(num_nodes, num_links)
        if (
            plan.regional.enabled
            and plan.regional.mode == "srlg"
            and risk_groups is None
        ):
            raise ValueError(
                "regional faults in 'srlg' mode need a risk-group "
                "assignment; pass risk_groups= (e.g. loadtest --srlg or "
                "a topology file with an srlg section)"
            )
        injector = FaultInjector(
            plan, seed=derive_seed(config.master_seed, "loadgen", "faults")
        )
        kind_to_op = {
            FLAP_DOWN: "fail_link", BURST_DOWN: "fail_link",
            REGIONAL_DOWN: "fail_link",
            FLAP_UP: "repair_link", BURST_UP: "repair_link",
            REGIONAL_UP: "repair_link",
        }
        for fault in injector.schedule(
            network, config.duration, risk_groups=risk_groups
        ):
            op = kind_to_op.get(fault.kind)
            if op is None:
                continue  # staleness windows are a simulator concern
            for link in fault.links:
                events.append((fault.time, order, TimelineEvent(
                    time=fault.time, op=op, args={"link": link},
                )))
                order += 1

    events.sort(key=lambda item: (item[0], item[1]))
    return [event for _, _, event in events]


@dataclass
class LoadReport:
    """What one load-generation run observed."""

    events: int = 0
    responses: int = 0
    admits: int = 0
    accepted: int = 0
    rejected: int = 0
    releases: int = 0
    released: int = 0
    fail_links: int = 0
    repair_links: int = 0
    protocol_errors: Dict[str, int] = field(default_factory=dict)
    #: Admission outcomes in request-id order (1 accepted, 0 rejected)
    #: — the byte-comparable decision trace.
    decisions: List[int] = field(default_factory=list)
    wall_seconds: float = 0.0
    final_status: Dict[str, Any] = field(default_factory=dict)
    prometheus: str = ""

    @property
    def acceptance_ratio(self) -> float:
        if self.admits == 0:
            return 0.0
        return self.accepted / self.admits

    @property
    def requests_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.responses / self.wall_seconds

    @property
    def protocol_error_total(self) -> int:
        return sum(self.protocol_errors.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "responses": self.responses,
            "admits": self.admits,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "acceptance_ratio": self.acceptance_ratio,
            "releases": self.releases,
            "released": self.released,
            "fail_links": self.fail_links,
            "repair_links": self.repair_links,
            "protocol_errors": dict(self.protocol_errors),
            "protocol_error_total": self.protocol_error_total,
            "wall_seconds": self.wall_seconds,
            "requests_per_second": self.requests_per_second,
            "decisions": list(self.decisions),
            "final_status": self.final_status,
        }


class LoadGenerator:
    """Replay a timeline against a live server over one connection."""

    def __init__(
        self,
        timeline: List[TimelineEvent],
        *,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        time_scale: float = 0.0,
        max_inflight: int = 64,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ValueError(
                "exactly one of socket_path or host must be given"
            )
        if time_scale < 0:
            raise ValueError("time_scale must be >= 0")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.timeline = timeline
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.time_scale = time_scale
        self.max_inflight = max_inflight

    async def _connect(self):
        if self.socket_path is not None:
            return await asyncio.open_unix_connection(self.socket_path)
        return await asyncio.open_connection(self.host, self.port)

    async def run(self) -> LoadReport:
        report = LoadReport()
        reader, writer = await self._connect()
        inflight = asyncio.Semaphore(self.max_inflight)
        pending: Dict[int, TimelineEvent] = {}
        decisions: Dict[int, int] = {}
        reader_done = asyncio.Event()

        async def read_responses() -> None:
            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        return
                    rid, ok, body = protocol.decode_response(line.decode())
                    report.responses += 1
                    event = pending.pop(rid, None)
                    if not ok:
                        kind = body.get("type", "unknown")
                        report.protocol_errors[kind] = (
                            report.protocol_errors.get(kind, 0) + 1
                        )
                    elif event is not None:
                        _tally(report, decisions, event, body)
                    inflight.release()
            finally:
                reader_done.set()
                # The generator may be parked in inflight.acquire()
                # with the window full; a server that went away will
                # never answer, so hand over one permit to let it wake
                # up, observe reader_done, and stop generating.
                inflight.release()

        # Encode the whole timeline before the clock starts so the
        # replay loop spends its (shared, single) core on the server's
        # work, not on JSON serialization.
        wire = [
            protocol.encode_request(event.op, event.args, request_id=seq)
            for seq, event in enumerate(self.timeline)
        ]
        reader_task = asyncio.ensure_future(read_responses())
        started = time.monotonic()
        try:
            for seq, event in enumerate(self.timeline):
                if reader_done.is_set():
                    break  # server went away; stop generating
                if self.time_scale > 0:
                    target = started + event.time * self.time_scale
                    delay = target - time.monotonic()
                    if delay > 0:
                        await asyncio.sleep(delay)
                await inflight.acquire()
                if reader_done.is_set():
                    break  # woken by the reader's EOF, not a response
                pending[seq] = event
                report.events += 1
                writer.write(wire[seq])
                # The inflight window already bounds the unanswered
                # backlog; drain only periodically to batch syscalls.
                if seq % 32 == 31 or self.time_scale > 0:
                    await writer.drain()
            await writer.drain()
            # Wait for every outstanding response (or server exit).
            for _ in range(self.max_inflight):
                if reader_done.is_set():
                    break
                await inflight.acquire()
            report.wall_seconds = time.monotonic() - started
            if not reader_done.is_set():
                # Every pipelined response is in; retire the background
                # reader so the epilogue reads below own the stream.
                reader_task.cancel()
                try:
                    await reader_task
                except (asyncio.CancelledError, Exception):
                    pass
                report.final_status = await self._read_op(
                    reader, writer, "status", {}
                )
                metrics = await self._read_op(
                    reader, writer, "metrics", {"format": "prometheus"}
                )
                report.prometheus = metrics.get("body", "")
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, Exception):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        report.decisions = [
            decisions[rid] for rid in sorted(decisions)
        ]
        return report

    @staticmethod
    async def _read_op(reader, writer, op: str,
                       args: Dict[str, Any]) -> Dict[str, Any]:
        writer.write(protocol.encode_request(op, args, request_id=op))
        await writer.drain()
        line = await reader.readline()
        if not line:
            return {}
        _, ok, body = protocol.decode_response(line.decode())
        return body if ok else {}


def _tally(report: LoadReport, decisions: Dict[int, int],
           event: TimelineEvent, body: Dict[str, Any]) -> None:
    if event.op == "admit":
        report.admits += 1
        accepted = bool(body.get("accepted"))
        if accepted:
            report.accepted += 1
        else:
            report.rejected += 1
        decisions[event.args["request_id"]] = int(accepted)
    elif event.op == "release":
        report.releases += 1
        if body.get("released"):
            report.released += 1
    elif event.op == "fail_link":
        report.fail_links += 1
    elif event.op == "repair_link":
        report.repair_links += 1


def run_sequential_reference(service, timeline) -> Dict[str, Any]:
    """Replay a timeline directly on a :class:`DRTPService`.

    The in-process twin of what the server does for a single pipelined
    client: same operations, same order, same service semantics
    (releases of departed connections are no-ops, repairs are
    idempotent).  With a live link-state database the decision trace
    is *exactly* the server's; in snapshot mode the server's per-batch
    refresh coalescing can refresh less often than this per-admit
    replay, so compare ratios with a tolerance there.
    """
    decisions: Dict[int, int] = {}
    admits = accepted = 0
    for event in timeline:
        if event.op == "admit":
            service.refresh_database()
            decision = service.request(
                event.args["source"],
                event.args["destination"],
                event.args["bw"],
                holding_time=event.args.get("hold", float("inf")),
                request_id=event.args["request_id"],
            )
            admits += 1
            if decision.accepted:
                accepted += 1
            decisions[event.args["request_id"]] = int(decision.accepted)
        elif event.op == "release":
            try:
                service.release(event.args["connection"])
            except ConnectionStateError:
                pass
        elif event.op == "fail_link":
            service.fail_link(event.args["link"])
        elif event.op == "repair_link":
            service.repair_link(event.args["link"])
        else:  # pragma: no cover - timeline only holds the four ops
            raise ValueError("unexpected op {!r}".format(event.op))
    return {
        "admits": admits,
        "accepted": accepted,
        "acceptance_ratio": accepted / admits if admits else 0.0,
        "decisions": [decisions[rid] for rid in sorted(decisions)],
        "counters": {
            "requests": service.counters.requests,
            "accepted": service.counters.accepted,
            "released": service.counters.released,
        },
    }
