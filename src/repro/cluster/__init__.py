"""Sharded multi-process control plane with replicated link state.

The single-writer asyncio server (PR 4) tops out around ~585
admissions/s on a core because routing — the expensive half of every
admission — serializes behind the mutation queue.  This package splits
the two halves across processes:

* :mod:`repro.cluster.replica` — epoch-numbered snapshots and
  incremental deltas of the authoritative
  :class:`~repro.network.state.NetworkState`, plus the
  :class:`~repro.cluster.replica.ReplicaDatabase` shards plan against
  (sequence-numbered, gap-detected, snapshot resync on loss);
* :mod:`repro.cluster.authority` — the deterministic epoch schedule
  and the single commit authority that validates shard plans against
  live truth before reserving (no double-spend, ever);
* :mod:`repro.cluster.worker` / :mod:`repro.cluster.pool` — the shard
  processes and their lifecycle (generation tags, SIGTERM drain,
  respawn under the campaign retry policy);
* :mod:`repro.cluster.engine` — the router-side sequencer/dispatcher
  that keeps replicas convergent, replans in-flight admissions inline
  when a shard dies, and commits strictly in sequence order;
* :mod:`repro.cluster.server` — the NDJSON frontend
  (``repro serve --workers N``);
* :mod:`repro.cluster.reference` / :mod:`repro.cluster.oracle` — the
  sequential replay of the same epoch discipline and the differential
  campaign that proves a live cluster (kills included) produces an
  identical decision trace.

The design invariant everything above leans on: **an admission's plan
is a pure function of its global sequence number and the replicated
epoch that number maps to** — never of shard count, dispatch timing,
or kill schedule.  That turns cross-process consistency into an exact
equality the oracle can assert, not a statistical property.
"""

from .authority import (
    CLUSTER_UNSAFE_SCHEMES,
    DEFAULT_BATCH,
    DEFAULT_LOOKAHEAD,
    AuthorityStats,
    EpochPlanner,
    commit_admission,
    epoch_for,
    plan_is_stale,
)
from .engine import ClusterEngine
from .oracle import ClusterOracleDivergence, run_cluster_oracle
from .pool import ShardHandle, ShardPool
from .reference import SequentialClusterAuthority, run_cluster_reference
from .replica import (
    DatabaseSnapshot,
    DeltaTracker,
    LinkStateDelta,
    ReplicaDatabase,
)
from .server import ClusterControlPlaneServer
from .worker import ShardConfig, shard_worker_main

__all__ = [
    "CLUSTER_UNSAFE_SCHEMES",
    "DEFAULT_BATCH",
    "DEFAULT_LOOKAHEAD",
    "AuthorityStats",
    "EpochPlanner",
    "commit_admission",
    "epoch_for",
    "plan_is_stale",
    "ClusterEngine",
    "ClusterOracleDivergence",
    "run_cluster_oracle",
    "ShardHandle",
    "ShardPool",
    "SequentialClusterAuthority",
    "run_cluster_reference",
    "DatabaseSnapshot",
    "DeltaTracker",
    "LinkStateDelta",
    "ReplicaDatabase",
    "ClusterControlPlaneServer",
    "ShardConfig",
    "shard_worker_main",
]
