"""Sequential replay of the cluster's epoch discipline.

:func:`run_cluster_reference` executes a deterministic
:class:`~repro.server.loadgen.LoadGenerator` timeline exactly the way
the sharded deployment does — every admission planned by an
:class:`~repro.cluster.authority.EpochPlanner` against the replicated
epoch view, every commit serialized through
:func:`~repro.cluster.authority.commit_admission` — but inline, in one
process, with no workers to kill.  Because the epoch schedule is a
pure function of the operation sequence number, this replay and a
live ``repro serve --workers N`` run (any N, any kill schedule) must
produce identical decision traces; the cluster differential oracle
asserts exactly that.

The report dict is shaped like
:func:`~repro.server.loadgen.run_sequential_reference` so the loadtest
``--verify`` plumbing can consume either reference.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..core.errors import ConnectionStateError
from ..core.service import DRTPService
from ..experiments.sweep import make_scheme
from ..server import ops
from ..server.loadgen import TimelineEvent
from ..topology.graph import Network
from ..topology.srlg import RiskGroupSet
from .authority import (
    DEFAULT_BATCH,
    DEFAULT_LOOKAHEAD,
    AuthorityStats,
    EpochPlanner,
    commit_admission,
    epoch_for,
)
from .replica import DatabaseSnapshot, DeltaTracker, LinkStateDelta


class SequentialClusterAuthority:
    """The commit authority driven inline: one live service, one epoch
    planner standing in for every shard (legitimate because all shards
    at the same epoch compute the same plan)."""

    def __init__(
        self,
        service: DRTPService,
        scheme_name: str,
        batch: int = DEFAULT_BATCH,
        lookahead: int = DEFAULT_LOOKAHEAD,
    ) -> None:
        if batch <= 0 or lookahead <= 0:
            raise ValueError("batch and lookahead must be positive")
        self.service = service
        self.batch = batch
        self.lookahead = lookahead
        self.stats = AuthorityStats()
        self.seq = 0
        self._tracker = DeltaTracker(service.state)
        self._deltas: Dict[int, LinkStateDelta] = {}
        self._planner = EpochPlanner(
            service.network,
            scheme_name,
            DatabaseSnapshot.capture(service.state, 0),
            risk_groups=service.risk_groups,
        )

    def admit(self, args: Dict[str, Any]) -> Dict[str, Any]:
        """Plan at the epoch view for this seq, commit via the authority."""
        target = epoch_for(self.seq, self.batch, self.lookahead)
        self._planner.advance_to(target, self._deltas)
        plan = self._planner.plan(args["source"], args["destination"], args["bw"])
        result = commit_admission(self.service, args, plan, self.stats)
        self._finish_commit()
        return result

    def release(self, connection_id: int) -> Dict[str, Any]:
        result = ops.apply_release(self.service, connection_id)
        self._finish_commit()
        return result

    def fail_link(self, link: int) -> Dict[str, Any]:
        result = ops.apply_fail_link(self.service, link)
        self._finish_commit()
        return result

    def repair_link(self, link: int) -> Dict[str, Any]:
        result = ops.apply_repair_link(self.service, link)
        self._finish_commit()
        return result

    def _finish_commit(self) -> None:
        self.seq += 1
        if self.seq % self.batch == 0:
            epoch = self.seq // self.batch
            self._deltas[epoch] = self._tracker.capture(epoch)
            # Deltas already behind the planner can never be re-read.
            for old in [e for e in self._deltas if e <= self._planner.replica.epoch]:
                del self._deltas[old]

    def close(self) -> None:
        """Detach the delta tracker from the service's state."""
        self._tracker.close()


def run_cluster_reference(
    network: Network,
    scheme_name: str,
    timeline: Iterable[TimelineEvent],
    batch: int = DEFAULT_BATCH,
    lookahead: int = DEFAULT_LOOKAHEAD,
    risk_groups: Optional[RiskGroupSet] = None,
    service: Optional[DRTPService] = None,
) -> Dict[str, Any]:
    """Replay a timeline under the cluster's epoch discipline.

    Returns the same report shape as
    :func:`~repro.server.loadgen.run_sequential_reference`:
    per-request decisions in request-id order plus summary counters,
    with an extra ``authority`` section recording replans/commits.
    """
    if service is None:
        service = DRTPService(
            network, make_scheme(scheme_name), risk_groups=risk_groups
        )
    authority = SequentialClusterAuthority(
        service, scheme_name, batch=batch, lookahead=lookahead
    )
    decisions: Dict[int, Dict[str, Any]] = {}
    admits = 0
    accepted = 0
    try:
        for event in timeline:
            if event.op == "admit":
                admits += 1
                result = authority.admit(event.args)
                decisions[event.args["request_id"]] = result
                if result["accepted"]:
                    accepted += 1
            elif event.op == "release":
                # Idempotent like the server path: the connection may
                # already be gone after a failure.
                try:
                    authority.release(event.args["connection"])
                except ConnectionStateError:
                    pass
            elif event.op == "fail_link":
                authority.fail_link(event.args["link"])
            elif event.op == "repair_link":
                authority.repair_link(event.args["link"])
    finally:
        authority.close()
    ordered: List[Dict[str, Any]] = [
        decisions[request_id] for request_id in sorted(decisions)
    ]
    return {
        "admits": admits,
        "accepted": accepted,
        "acceptance_ratio": accepted / admits if admits else 0.0,
        # 0/1 per request id, shaped like run_sequential_reference for
        # the loadtest --verify plumbing ...
        "decisions": [int(result["accepted"]) for result in ordered],
        # ... and the full protocol results for the hard oracle diff.
        "results": ordered,
        "counters": {
            "requests": service.counters.requests,
            "accepted": service.counters.accepted,
            "released": service.counters.released,
        },
        "authority": {
            "batch": batch,
            "lookahead": lookahead,
            "commits": authority.stats.commits,
            "replans": authority.stats.replans,
            "final_epoch": authority.seq // batch,
        },
    }
