"""Differential oracle for the sharded control plane.

:func:`run_cluster_oracle` boots a real
:class:`~repro.cluster.server.ClusterControlPlaneServer` on a unix
socket, drives it with a deterministic
:class:`~repro.server.loadgen.LoadGenerator` timeline while a watchdog
SIGKILLs one shard mid-load (exercising reap → respawn → inline
requeue), then replays the *same* timeline through
:func:`~repro.cluster.reference.run_cluster_reference` and asserts the
two runs are indistinguishable:

* identical 0/1 decision traces (request-id order),
* identical service counters (requests / accepted / released),
* identical :meth:`~repro.network.state.NetworkState.fingerprint` of
  the final link state (reservations, registry, APLV — so even a
  same-decision different-route divergence is caught).

Any mismatch raises :class:`ClusterOracleDivergence`; either way the
full comparison is archived as JSON so CI keeps the evidence.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..core.service import DRTPService
from ..experiments.sweep import make_scheme
from ..server.loadgen import LoadGenConfig, LoadGenerator, build_timeline
from ..topology.mesh import mesh_network
from .authority import DEFAULT_BATCH, DEFAULT_LOOKAHEAD
from .reference import run_cluster_reference
from .server import ClusterControlPlaneServer

#: Schema version of the archived oracle report.
ORACLE_VERSION = 1


class ClusterOracleDivergence(AssertionError):
    """A live cluster run disagreed with the sequential replay."""


def _diff_decisions(live: List[int], reference: List[int]) -> List[int]:
    """Request ids whose admission decisions disagree."""
    diverged = [
        rid
        for rid, (a, b) in enumerate(zip(live, reference))
        if a != b
    ]
    longer = max(len(live), len(reference))
    diverged.extend(range(min(len(live), len(reference)), longer))
    return diverged


async def _kill_one_shard(engine, killed: Dict[str, Any]) -> None:
    """Wait until plans are actually in flight, then SIGKILL one shard.

    Killing while :meth:`outstanding_count` is high makes the inline
    requeue path near-certain to fire (the dead shard owns some of the
    outstanding plans); the respawn itself is guaranteed either way.
    """
    deadline = asyncio.get_event_loop().time() + 30.0
    while asyncio.get_event_loop().time() < deadline:
        pids = engine.shard_pids()
        if pids and engine.outstanding_count() >= 2:
            target = pids[0]
            try:
                os.kill(target, signal.SIGKILL)
            except ProcessLookupError:  # pragma: no cover - exited already
                await asyncio.sleep(0.01)
                continue
            killed["pid"] = target
            return
        await asyncio.sleep(0.005)
    killed["pid"] = None  # pragma: no cover - load finished too fast


async def _drive(
    server: ClusterControlPlaneServer,
    timeline,
    socket_path: str,
    kill_shard: bool,
) -> Dict[str, Any]:
    await server.start()
    killed: Dict[str, Any] = {"pid": None}
    generator = LoadGenerator(timeline, socket_path=socket_path, time_scale=0.0)
    try:
        if kill_shard:
            report, _ = await asyncio.gather(
                generator.run(), _kill_one_shard(server.engine, killed)
            )
        else:
            report = await generator.run()
    finally:
        await server.shutdown()
    return {"report": report, "killed_pid": killed["pid"]}


def run_cluster_oracle(
    *,
    workers: int = 2,
    scheme: str = "D-LSR",
    rows: int = 6,
    cols: int = 6,
    capacity: float = 30.0,
    arrival_rate: float = 40.0,
    duration: float = 15.0,
    seed: int = 7,
    batch: int = DEFAULT_BATCH,
    lookahead: int = DEFAULT_LOOKAHEAD,
    kill_shard: bool = True,
    out_path: Optional[str] = None,
    workdir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the cluster differential campaign; return the report dict.

    Raises :class:`ClusterOracleDivergence` if the live sharded run and
    the sequential epoch replay disagree in any observable way.  The
    report (written to ``out_path`` when given, divergent or not)
    records the kill, every requeue/resync, and the per-shard totals.
    """
    network = mesh_network(rows, cols, capacity)
    timeline = build_timeline(
        LoadGenConfig(
            arrival_rate=arrival_rate, duration=duration, master_seed=seed
        ),
        network.num_nodes,
        network.num_links,
        network=network,
    )

    def _run_in(directory: str) -> Dict[str, Any]:
        base = Path(directory)
        service = DRTPService(network, make_scheme(scheme))
        server = ClusterControlPlaneServer(
            service,
            scheme_name=scheme,
            workers=workers,
            batch=batch,
            lookahead=lookahead,
            socket_path=str(base / "oracle.sock"),
            manifest_path=str(base / "manifest.json"),
            trace_dir=str(base / "trace"),
            cluster_dir=str(base / "cluster"),
        )
        outcome = asyncio.run(
            _drive(server, timeline, str(base / "oracle.sock"), kill_shard)
        )
        outcome["cluster"] = server.engine.status()
        outcome["fingerprint"] = service.state.fingerprint()
        outcome["counters"] = {
            "requests": service.counters.requests,
            "accepted": service.counters.accepted,
            "released": service.counters.released,
        }
        return outcome

    if workdir is not None:
        Path(workdir).mkdir(parents=True, exist_ok=True)
        live = _run_in(workdir)
    else:
        with tempfile.TemporaryDirectory(prefix="cluster-oracle-") as tmp:
            live = _run_in(tmp)

    reference_service = DRTPService(network, make_scheme(scheme))
    reference = run_cluster_reference(
        network,
        scheme,
        timeline,
        batch=batch,
        lookahead=lookahead,
        service=reference_service,
    )

    report = live["report"]
    cluster = live["cluster"]
    diverged = _diff_decisions(report.decisions, reference["decisions"])
    decisions_identical = not diverged
    counters_match = live["counters"] == reference["counters"]
    fingerprint_match = (
        live["fingerprint"] == reference_service.state.fingerprint()
    )
    divergences = (
        len(diverged)
        + (0 if counters_match else 1)
        + (0 if fingerprint_match else 1)
    )

    result: Dict[str, Any] = {
        "version": ORACLE_VERSION,
        "config": {
            "workers": workers,
            "scheme": scheme,
            "rows": rows,
            "cols": cols,
            "capacity": capacity,
            "arrival_rate": arrival_rate,
            "duration": duration,
            "seed": seed,
            "batch": batch,
            "lookahead": lookahead,
            "kill_shard": kill_shard,
        },
        "ops": len(timeline),
        "admits": report.admits,
        "accepted": report.accepted,
        "acceptance_ratio": report.acceptance_ratio,
        "protocol_errors": dict(report.protocol_errors),
        "divergences": divergences,
        "decisions_identical": decisions_identical,
        "diverged_request_ids": diverged[:32],
        "counters_match": counters_match,
        "fingerprint_match": fingerprint_match,
        "counters": live["counters"],
        "reference": {
            "accepted": reference["accepted"],
            "authority": reference["authority"],
        },
        "kill": {
            "requested": kill_shard,
            "pid": live["killed_pid"],
            "worker_restarts": sum(
                shard["restarts"] for shard in cluster["shards"]
            ),
            "requeues": cluster["requeues"],
            "inline_plans": cluster["inline_plans"],
            "stale_results": cluster["stale_results"],
        },
        "replication": {
            "final_epoch": cluster["epoch"],
            "deltas_sent": cluster["deltas_sent"],
            "snapshots_sent": cluster["snapshots_sent"],
            "authority_replans": cluster["replans"],
        },
        "per_shard": cluster["shards"],
    }

    if out_path is not None:
        out = Path(out_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")

    if divergences:
        raise ClusterOracleDivergence(
            "cluster run diverged from sequential replay: "
            "{} decision mismatches (first: {}), counters_match={}, "
            "fingerprint_match={}".format(
                len(diverged),
                diverged[0] if diverged else None,
                counters_match,
                fingerprint_match,
            )
        )
    return result
