"""The cluster's epoch discipline and single commit authority.

Every mutating operation the router accepts gets a global sequence
number ``seq`` in arrival order.  The authoritative state is frozen
into epochs every :data:`DEFAULT_BATCH` commits — epoch ``j`` is the
state after commit ``j * batch`` — and the admission at ``seq`` plans
against the epoch view

    ``epoch_for(seq) = max(0, seq // batch - lookahead + 1)``

so with the default ``lookahead = 2`` the shards plan one commit group
ahead of the group currently being committed (double buffering), and
plans never wait on the state they race.  Crucially the schedule is a
pure function of ``seq``: any shard, the router's inline replanner,
and the sequential reference all compute identical plans for the same
operation, which is what makes the cluster differential oracle a
hard equality check instead of a tolerance band.

The commit authority is the only writer.  It applies operations in
``seq`` order against the one live :class:`~repro.core.service.DRTPService`
and *validates* each shard plan before reserving: a plan whose routes
touch a live-failed link, or whose primary no longer fits, is replanned
on the authority's live database (counted in
:attr:`AuthorityStats.replans`) — two shards can race the same spare
capacity, but only the authority spends it, so double-spend is
impossible and every divergence between the epoch view and live truth
is repaired deterministically at the serialization point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.service import DRTPService
from ..experiments.sweep import make_scheme
from ..network.state import BW_EPSILON, NetworkState
from ..routing.base import RoutePlan, RouteQuery, RoutingContext
from ..server import ops
from ..topology.graph import Network
from ..topology.srlg import RiskGroupSet
from .replica import INGEST_APPLIED, DatabaseSnapshot, LinkStateDelta, ReplicaDatabase

#: Commits per epoch (the delta-capture granularity).
DEFAULT_BATCH = 32

#: How many epochs ahead of the committed boundary shards may plan.
DEFAULT_LOOKAHEAD = 2

#: Schemes whose planners carry hidden per-instance state (a shared RNG
#: stream position) and therefore cannot be replicated across shards
#: without changing decisions.  The cluster refuses them up front.
CLUSTER_UNSAFE_SCHEMES = frozenset({"random"})


def epoch_for(seq: int, batch: int, lookahead: int) -> int:
    """The epoch view operation ``seq`` plans against (see module docs)."""
    return max(0, seq // batch - lookahead + 1)


@dataclass
class AuthorityStats:
    """What the commit authority did, for status/manifest surfaces."""

    commits: int = 0
    replans: int = 0


def plan_is_stale(service: DRTPService, plan: RoutePlan, bw: float) -> bool:
    """Does the epoch-view plan contradict live truth?

    Two deterministic triggers: any planned route crosses a link that
    has failed since the epoch froze, or the primary no longer fits
    under the same ``BW_EPSILON`` feasibility test the reservation
    would apply.  Backup bandwidth is *not* rechecked — spare
    multiplexing means registration answers that — so a plan is only
    replanned when committing it as-is could reserve on dead or
    oversubscribed links.
    """
    if plan.primary is None:
        return False
    state = service.state
    for route in (plan.primary,) + plan.all_backups:
        for link_id in route.link_ids:
            if state.is_link_failed(link_id):
                return True
    for link_id in plan.primary.link_ids:
        if bw > state.ledger(link_id).primary_headroom() + BW_EPSILON:
            return True
    return False


def commit_admission(
    service: DRTPService,
    args: Dict[str, Any],
    plan: RoutePlan,
    stats: AuthorityStats,
) -> Dict[str, Any]:
    """Serialize one admission through the authority.

    The shard's plan is validated against live state, replanned on the
    authority's own (live) scheme when stale, then committed through
    the same :mod:`repro.server.ops` result shaping the single-process
    server uses.  Both the cluster engine and the sequential reference
    call exactly this function, so their decision traces can only
    diverge if the plans they feed it diverge.
    """
    if plan_is_stale(service, plan, args["bw"]):
        stats.replans += 1
        plan = service.scheme.plan(
            RouteQuery(
                args["source"], args["destination"], args["bw"], max_hops=None
            )
        )
    stats.commits += 1
    return ops.apply_admit_planned(service, args, plan)


class EpochPlanner:
    """A routing scheme bound to a :class:`ReplicaDatabase` advancing
    under the cluster's epoch discipline.

    This is the planning half of an admission shard, reused verbatim
    in three places: inside every worker process, inside the router
    for kill-recovery replans of in-flight admissions, and inside the
    sequential reference — one implementation, one decision function.
    """

    def __init__(
        self,
        network: Network,
        scheme_name: str,
        snapshot: DatabaseSnapshot,
        risk_groups: Optional[RiskGroupSet] = None,
    ) -> None:
        self.replica = ReplicaDatabase(snapshot, risk_groups=risk_groups)
        self.scheme = make_scheme(scheme_name)
        # The context's NetworkState is a blank stand-in: schemes read
        # exclusively through the database (the replica); only the
        # topology and distance tables come from the context.
        self.scheme.bind(
            RoutingContext(network, NetworkState(network), database=self.replica)
        )

    def advance_to(self, epoch: int, deltas: Dict[int, LinkStateDelta]) -> None:
        """Ingest buffered deltas until the replica reaches ``epoch``."""
        while self.replica.epoch < epoch:
            delta = deltas[self.replica.epoch + 1]
            verdict = self.replica.ingest(delta)
            if verdict != INGEST_APPLIED:
                raise RuntimeError(
                    "replica at epoch {} refused delta {}: {}".format(
                        self.replica.epoch, delta.epoch, verdict
                    )
                )

    def plan(self, source: int, destination: int, bw: float) -> RoutePlan:
        """Plan one admission against the replica's current epoch."""
        return self.scheme.plan(RouteQuery(source, destination, bw, max_hops=None))
