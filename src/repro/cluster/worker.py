"""The admission-shard worker process.

Each shard is a plain OS process holding one
:class:`~repro.cluster.authority.EpochPlanner` (a routing scheme bound
to a delta-fed :class:`~repro.cluster.replica.ReplicaDatabase`).  The
router keeps the replica convergent by interleaving ``delta`` /
``snapshot`` messages with ``plan`` requests on the shard's FIFO
dispatch queue, so by the time a plan request is dequeued the replica
is already at exactly the epoch the request must be planned against.

Lifecycle mirrors the campaign worker pool: a ``None`` sentinel asks
for a clean exit, SIGTERM asks for a graceful drain (flush whatever is
already queued, then exit), and SIGKILL is survived by the router's
inline requeue.  On any clean exit the worker writes an atomic
per-shard metrics manifest and, when tracing, an NDJSON span file the
router stitches into the merged trace.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from ..experiments.sweep import make_scheme
from ..network.state import NetworkState
from ..observability import TraceCollector, write_ndjson
from ..routing.base import RouteQuery, RoutingContext
from ..topology.graph import Network
from ..topology.srlg import RiskGroupSet
from .replica import INGEST_APPLIED, ReplicaDatabase


@dataclass
class ShardConfig:
    """Everything a shard needs to boot (picklable for spawn starts)."""

    worker_id: int
    generation: int
    scheme_name: str
    network: Network
    risk_groups: Optional[RiskGroupSet] = None
    manifest_dir: Optional[str] = None
    trace_dir: Optional[str] = None
    trace_max_spans: int = 100_000


def shard_manifest_path(manifest_dir: str, worker_id: int) -> Path:
    """Where shard ``worker_id`` writes its metrics manifest."""
    return Path(manifest_dir) / "shard-{}.json".format(worker_id)


def _write_shard_manifest(config: ShardConfig, stats: Dict[str, Any]) -> None:
    if config.manifest_dir is None:
        return
    directory = Path(config.manifest_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = shard_manifest_path(config.manifest_dir, config.worker_id)
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)  # atomic: readers never see a torn manifest


def shard_worker_main(config: ShardConfig, inbox, results) -> None:
    """Process entry point: replicate, plan, drain cleanly.

    ``inbox`` carries ``("snapshot", DatabaseSnapshot)``,
    ``("delta", LinkStateDelta)``, ``("plan", seq, epoch, args)`` and
    the coalesced ``("plan_batch", epoch, [(seq, args), ...])``
    messages plus the ``None`` shutdown sentinel; ``results`` receives
    ``("planned", worker_id, generation, seq, RoutePlan)`` /
    ``("planned_batch", worker_id, generation, [(seq, RoutePlan),
    ...])`` replies and a final
    ``("stopped", worker_id, generation, stats)``.
    """
    drain = {"flag": False}
    signal.signal(signal.SIGTERM, lambda signum, frame: drain.update(flag=True))
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    trace = (
        TraceCollector(max_spans=config.trace_max_spans)
        if config.trace_dir is not None
        else None
    )
    replica: Optional[ReplicaDatabase] = None
    scheme = None
    stats: Dict[str, Any] = {
        "shard": config.worker_id,
        "generation": config.generation,
        "pid": os.getpid(),
        "planned": 0,
        "deltas_applied": 0,
        "snapshots": 0,
        "resyncs": 0,
        "desyncs": 0,
        "exit_reason": "sentinel",
    }

    def plan_one(seq, epoch, args):
        """Plan one admission against the current replica epoch."""
        query = RouteQuery(
            args["source"], args["destination"], args["bw"], max_hops=None
        )
        if trace is not None:
            span = trace.span(
                "cluster.plan",
                category="cluster",
                seq=seq,
                epoch=epoch,
                shard=config.worker_id,
            )
            with span:
                plan = scheme.plan(query)
                span.tag(accepted=plan.accepted)
            return plan
        return scheme.plan(query)

    def handle(message) -> bool:
        """Apply one dispatch message; False stops the loop."""
        nonlocal replica, scheme
        if message is None:
            return False
        kind = message[0]
        if kind == "snapshot":
            snapshot = message[1]
            if replica is None:
                replica = ReplicaDatabase(
                    snapshot, risk_groups=config.risk_groups
                )
                scheme = make_scheme(config.scheme_name)
                scheme.bind(
                    RoutingContext(
                        config.network,
                        NetworkState(config.network),
                        database=replica,
                    )
                )
                stats["snapshots"] += 1
            else:
                replica.resync(snapshot)
                stats["resyncs"] += 1
        elif kind == "delta":
            if replica is None or replica.ingest(message[1]) != INGEST_APPLIED:
                # FIFO dispatch makes this unreachable in practice;
                # report it rather than planning on a wrong epoch.
                stats["desyncs"] += 1
                results.put(("desync", config.worker_id, config.generation))
            else:
                stats["deltas_applied"] += 1
        elif kind == "plan":
            _, seq, epoch, args = message
            if replica is None or replica.epoch != epoch:
                stats["desyncs"] += 1
                results.put(("desync", config.worker_id, config.generation))
                return True
            plan = plan_one(seq, epoch, args)
            results.put(
                ("planned", config.worker_id, config.generation, seq, plan)
            )
            stats["planned"] += 1
        elif kind == "plan_batch":
            # One queue hop carries an entire same-epoch run: the
            # epoch check happens once, and one batched reply replaces
            # per-request result-queue writes on the way back.
            _, epoch, items = message
            if replica is None or replica.epoch != epoch:
                stats["desyncs"] += 1
                results.put(("desync", config.worker_id, config.generation))
                return True
            planned = [(seq, plan_one(seq, epoch, args))
                       for seq, args in items]
            results.put(
                ("planned_batch", config.worker_id, config.generation,
                 planned)
            )
            stats["planned"] += len(planned)
        return True

    running = True
    while running:
        if drain["flag"]:
            # Graceful SIGTERM drain: flush everything already queued
            # (the in-flight batch), answer it, then exit — the router
            # stays up and respawns a fresh generation.
            stats["exit_reason"] = "SIGTERM"
            while True:
                try:
                    message = inbox.get_nowait()
                except queue.Empty:
                    break
                if not handle(message):
                    stats["exit_reason"] = "sentinel"
                    break
            break
        try:
            message = inbox.get(timeout=0.2)
        except queue.Empty:
            continue
        running = handle(message)

    if replica is not None:
        stats["replica_epoch"] = replica.epoch
        stats["duplicates_ignored"] = replica.duplicates_ignored
        stats["gaps_detected"] = replica.gaps_detected
    _write_shard_manifest(config, stats)
    if trace is not None and config.trace_dir is not None:
        directory = Path(config.trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        write_ndjson(
            directory
            / "shard-{}-{}.ndjson".format(config.worker_id, config.generation),
            trace,
            label="drtp-shard-{}".format(config.worker_id),
        )
    results.put(("stopped", config.worker_id, config.generation, stats))
    sys.exit(0)
