"""Delta-replicated link-state: snapshots, deltas and shard replicas.

The cluster keeps one authoritative :class:`~repro.network.state.NetworkState`
(in the router process) and N read-only replicas (one per admission
shard).  Replication is epoch-based: the authoritative state is frozen
into numbered epochs at fixed commit boundaries, and each boundary
emits a :class:`LinkStateDelta` carrying only the link records that
changed since the previous boundary — the same incremental-update
discipline the PR-2 APLV fast path uses in-process, lifted across
process boundaries.

A replica record stores exactly the advertised quantities the routing
schemes read through the :class:`~repro.network.database.LinkStateDatabase`
API (``||APLV||_1``, the CV support bitset, headrooms, and the SRLG
aggregates), so a :class:`ReplicaDatabase` can be bound into a
:class:`~repro.routing.base.RoutingContext` as a drop-in database.
``supports_compiled_kernel`` is ``False`` on purpose: replicas plan on
the object path, and so does the sequential cluster reference, keeping
the differential oracle comparison apples-to-apples.

Delivery is sequence-numbered and gap-detected: a replica applies
delta ``epoch = current + 1``, ignores duplicates (``epoch <=
current``), and flags any gap for a full :class:`DatabaseSnapshot`
resync — it refuses every further delta until the resync arrives, since
an intermediate update is already lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..network.conflict_vector import ConflictVector
from ..network.state import LinkLedger, NetworkState, ResourceError
from ..topology.srlg import RiskGroupSet

#: Advertised per-link quantities, in tuple order: ``(aplv_l1,
#: support_mask, primary_headroom, backup_headroom, group_aplv_l1,
#: group_support)``.
LinkRecord = Tuple[int, int, float, float, int, FrozenSet[int]]

#: Ingest verdicts returned by :meth:`ReplicaDatabase.ingest`.
INGEST_APPLIED = "applied"
INGEST_DUPLICATE = "duplicate"
INGEST_GAP = "gap"
INGEST_BLOCKED = "blocked"


def capture_record(ledger: LinkLedger) -> LinkRecord:
    """Freeze one ledger's advertised quantities into a replica record."""
    return (
        ledger.aplv.l1_norm,
        ledger.support_mask(),
        ledger.primary_headroom(),
        ledger.backup_headroom(),
        ledger.group_aplv_l1(),
        ledger.group_support(),
    )


@dataclass(frozen=True)
class DatabaseSnapshot:
    """A full link-state image at one epoch — the resync unit.

    ``records[link_id]`` is the :data:`LinkRecord` for that link;
    ``failed`` is the frozen link-health set at the epoch boundary.
    """

    epoch: int
    num_links: int
    records: Tuple[LinkRecord, ...]
    failed: FrozenSet[int]

    @classmethod
    def capture(cls, state: NetworkState, epoch: int) -> "DatabaseSnapshot":
        """Freeze the authoritative state into a snapshot at ``epoch``."""
        return cls(
            epoch=epoch,
            num_links=state.network.num_links,
            records=tuple(capture_record(ledger) for ledger in state.ledgers()),
            failed=state.failed_links(),
        )

    def fingerprint(self) -> tuple:
        """Hashable exact image: equal fingerprints mean a replica and a
        fresh capture would answer every database read identically."""
        return (self.epoch, self.num_links, self.records, tuple(sorted(self.failed)))


@dataclass(frozen=True)
class LinkStateDelta:
    """The incremental replication unit between consecutive epochs.

    ``changes`` carries records only for links whose ledgers mutated
    since the previous boundary (the dirty set); ``failed`` carries the
    *full* link-health set, because health transitions do not touch the
    ledgers (``mark_link_failed`` bypasses the mutation subscribers)
    and the set is tiny.
    """

    epoch: int
    changes: Tuple[Tuple[int, LinkRecord], ...]
    failed: FrozenSet[int]


class DeltaTracker:
    """Accumulates the authoritative dirty-link set between epoch
    boundaries and freezes it into :class:`LinkStateDelta` objects.

    Subscribes to the :class:`~repro.network.state.NetworkState`
    mutation feed exactly like the in-process incremental database
    does; :meth:`capture` drains the dirty set.
    """

    def __init__(self, state: NetworkState) -> None:
        self._state = state
        self._dirty: Set[int] = set()
        state.subscribe(self._mark_dirty)

    def _mark_dirty(self, link_id: int) -> None:
        self._dirty.add(link_id)

    def capture(self, epoch: int) -> LinkStateDelta:
        """Freeze the changes since the last capture into the delta
        advancing replicas to ``epoch``, and clear the dirty set."""
        changes = tuple(
            (link_id, capture_record(self._state.ledger(link_id)))
            for link_id in sorted(self._dirty)
        )
        self._dirty.clear()
        return LinkStateDelta(
            epoch=epoch, changes=changes, failed=self._state.failed_links()
        )

    def close(self) -> None:
        """Detach from the state's mutation feed."""
        self._state.unsubscribe(self._mark_dirty)


class ReplicaDatabase:
    """A shard's replicated link-state database.

    Mirrors the read API of
    :class:`~repro.network.database.LinkStateDatabase` so routing
    schemes bind to it unchanged, but is fed exclusively by
    :meth:`ingest` (deltas) and :meth:`resync` (snapshots).  Every read
    answers from the replica's current epoch — including
    :meth:`is_failed`, which deliberately deviates from the live
    database's always-live health reads: a shard plans on its frozen
    epoch view, and the commit authority re-validates plans against
    live health before reserving bandwidth.
    """

    #: Replicas plan on the object path (see module docstring).
    supports_compiled_kernel = False

    def __init__(
        self,
        snapshot: DatabaseSnapshot,
        risk_groups: Optional[RiskGroupSet] = None,
    ) -> None:
        self.num_links = snapshot.num_links
        self._records: List[LinkRecord] = list(snapshot.records)
        self._failed: FrozenSet[int] = snapshot.failed
        self.epoch = snapshot.epoch
        self._risk_groups = risk_groups
        self.needs_resync = False
        self.deltas_applied = 0
        self.duplicates_ignored = 0
        self.gaps_detected = 0
        self.resyncs = 0

    # ------------------------------------------------------------------
    # Replication feed
    # ------------------------------------------------------------------

    def ingest(self, delta: LinkStateDelta) -> str:
        """Apply one delta; returns an ingest verdict.

        ``applied``    — in-order, replica advanced one epoch.
        ``duplicate``  — already incorporated; ignored.
        ``gap``        — at least one intermediate delta was lost; the
        replica flags :attr:`needs_resync` and freezes.
        ``blocked``    — in-order arrival while a resync is pending
        (an earlier delta is still missing); refused.
        """
        if delta.epoch <= self.epoch:
            self.duplicates_ignored += 1
            return INGEST_DUPLICATE
        if delta.epoch != self.epoch + 1:
            self.gaps_detected += 1
            self.needs_resync = True
            return INGEST_GAP
        if self.needs_resync:
            return INGEST_BLOCKED
        for link_id, record in delta.changes:
            self._records[link_id] = record
        self._failed = delta.failed
        self.epoch = delta.epoch
        self.deltas_applied += 1
        return INGEST_APPLIED

    def resync(self, snapshot: DatabaseSnapshot) -> None:
        """Replace the replica's image with a full snapshot (gap
        recovery, or catch-up past the router's delta retention)."""
        if snapshot.num_links != self.num_links:
            raise ResourceError(
                "resync snapshot covers {} links, replica has {}".format(
                    snapshot.num_links, self.num_links
                )
            )
        self._records = list(snapshot.records)
        self._failed = snapshot.failed
        self.epoch = snapshot.epoch
        self.needs_resync = False
        self.resyncs += 1

    def snapshot(self) -> DatabaseSnapshot:
        """Export the replica's current image (how the router builds
        resync snapshots at past epochs without touching live state)."""
        return DatabaseSnapshot(
            epoch=self.epoch,
            num_links=self.num_links,
            records=tuple(self._records),
            failed=self._failed,
        )

    def clone(self) -> "ReplicaDatabase":
        """An independent copy at the same epoch (ingest counters reset)."""
        return ReplicaDatabase(self.snapshot(), risk_groups=self._risk_groups)

    def fingerprint(self) -> tuple:
        """Hashable exact image, comparable with
        :meth:`DatabaseSnapshot.fingerprint` of a fresh capture."""
        return self.snapshot().fingerprint()

    # ------------------------------------------------------------------
    # LinkStateDatabase read API
    # ------------------------------------------------------------------

    @property
    def live(self) -> bool:
        """Replicas are never live — they serve their epoch image."""
        return False

    @property
    def stale(self) -> bool:
        return self.needs_resync

    @property
    def risk_groups(self) -> Optional[RiskGroupSet]:
        """The SRLG assignment the replica prices against, if any."""
        return self._risk_groups

    @property
    def has_risk_groups(self) -> bool:
        return self._risk_groups is not None

    def _record(self, link_id: int) -> LinkRecord:
        if not 0 <= link_id < self.num_links:
            raise ResourceError("unknown link id {}".format(link_id))
        return self._records[link_id]

    def aplv_l1(self, link_id: int) -> int:
        """P-LSR's advertised scalar at the replica's epoch."""
        return self._record(link_id)[0]

    def conflict_vector(self, link_id: int) -> ConflictVector:
        """D-LSR's advertised bit-vector, rebuilt from the support mask."""
        mask = self._record(link_id)[1]
        positions = [bit for bit in range(self.num_links) if (mask >> bit) & 1]
        return ConflictVector(self.num_links, positions)

    def is_failed(self, link_id: int) -> bool:
        """Link health frozen at the replica's epoch (see class docs)."""
        self._record(link_id)  # bounds check
        return link_id in self._failed

    def conflict_count(self, link_id: int, primary_lset: Iterable[int]) -> int:
        """D-LSR's cost term off the replica's support bitset."""
        mask = self._record(link_id)[1]
        return sum(1 for member in primary_lset if (mask >> member) & 1)

    def group_aplv_l1(self, link_id: int) -> int:
        """P-LSR's SRLG-generalized scalar at the replica's epoch."""
        return self._record(link_id)[4]

    def group_conflict_count(self, link_id: int, primary_lset: Iterable[int]) -> int:
        """D-LSR's SRLG-generalized cost term at the replica's epoch."""
        if self._risk_groups is None:
            raise ResourceError("no risk groups installed")
        support = self._record(link_id)[5]
        return sum(
            1
            for group in self._risk_groups.groups_of(primary_lset)
            if group in support
        )

    def primary_headroom(self, link_id: int) -> float:
        """Bandwidth a new primary could reserve, at the epoch."""
        return self._record(link_id)[2]

    def backup_headroom(self, link_id: int) -> float:
        """Bandwidth visible to a backup search, at the epoch."""
        return self._record(link_id)[3]
