"""The router's commit-side engine: sequencing, dispatch, commit.

One dedicated thread owns the whole mutation pipeline:

* **intake** — pre-validated mutations arrive from the asyncio front
  end in arrival order and receive global sequence numbers;
* **dispatch** — admissions fan out to the shard pool in coalesced
  same-epoch batches (one ``plan_batch`` queue hop per shard per
  epoch run, answered by one ``planned_batch`` reply), each preceded
  on its shard's FIFO queue by exactly the deltas (or a full
  snapshot, when the shard is fresh or lagging behind delta
  retention) that bring the replica to the batch's epoch view;
* **commit** — operations apply to the one live
  :class:`~repro.core.service.DRTPService` strictly in sequence order
  through the :mod:`repro.cluster.authority` commit functions, and
  every ``batch`` commits the :class:`~repro.cluster.replica.DeltaTracker`
  freezes the next epoch's delta.

Kill-safety: when a shard dies (or drains on SIGTERM), the pool
respawns it and the engine replans every in-flight admission inline on
its own :class:`~repro.cluster.authority.EpochPlanner` — the identical
plan the shard would have produced, because plans are pure functions
of ``(epoch view, request)``.  Late replies from the dead generation
are discarded by tag.  This is why a SIGKILL mid-batch cannot change
the decision trace, only the latency.

The engine thread and the asyncio thread share the service through
:attr:`ClusterEngine.lock`; reads (status/metrics) take it, commits
take it, so scrapes always observe a commit boundary.
"""

from __future__ import annotations

import queue
import threading
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional
from collections import deque

from ..core.service import DRTPService
from ..observability import read_ndjson
from ..server import ops
from ..topology.srlg import RiskGroupSet
from .authority import (
    CLUSTER_UNSAFE_SCHEMES,
    DEFAULT_BATCH,
    DEFAULT_LOOKAHEAD,
    AuthorityStats,
    EpochPlanner,
    commit_admission,
    epoch_for,
)
from .pool import ShardHandle, ShardPool
from .replica import DatabaseSnapshot, DeltaTracker, LinkStateDelta
from .worker import ShardConfig

#: Inbound sentinel asking the engine to drain and stop.
_DRAIN = object()


@dataclass
class _PendingOp:
    """One sequenced mutation between intake and commit."""

    seq: int
    kind: str
    args: Dict[str, Any]
    future: Any
    op_span: Any = None
    plan: Any = None
    ready: bool = False


class ClusterEngine:
    """Sequencer, dispatcher and commit authority for one cluster."""

    def __init__(
        self,
        service: DRTPService,
        scheme_name: str,
        workers: int,
        batch: int = DEFAULT_BATCH,
        lookahead: int = DEFAULT_LOOKAHEAD,
        risk_groups: Optional[RiskGroupSet] = None,
        registry=None,
        trace=None,
        server_stats=None,
        manifest_dir: Optional[str] = None,
        trace_dir: Optional[str] = None,
        retry_policy=None,
    ) -> None:
        if scheme_name in CLUSTER_UNSAFE_SCHEMES:
            raise ValueError(
                "scheme {!r} keeps per-instance planner state (an RNG "
                "stream) and cannot be replicated across shards".format(
                    scheme_name
                )
            )
        if batch <= 0 or lookahead <= 0:
            raise ValueError("batch and lookahead must be positive")
        if service.qos_slack is not None:
            raise ValueError(
                "cluster mode plans on replicas with unbounded QoS routes; "
                "qos_slack is not supported"
            )
        self.service = service
        self.scheme_name = scheme_name
        self.batch = batch
        self.lookahead = lookahead
        self.risk_groups = risk_groups
        self.trace = trace
        self.trace_dir = trace_dir
        self.manifest_dir = manifest_dir
        self.stats = AuthorityStats()
        self.lock = threading.RLock()
        self.inbound: "queue.Queue" = queue.Queue()
        self.requeues = 0
        self.inline_plans = 0
        self.stale_results = 0
        self.deltas_sent = 0
        self.snapshots_sent = 0
        self.shard_reports: Dict[int, Dict[str, Any]] = {}
        self._server_stats = server_stats
        self._loop = None
        self._thread: Optional[threading.Thread] = None
        self._draining = False
        self._next_seq = 0
        self._commit_seq = 0
        self._captured = 0
        self._pending: Dict[int, _PendingOp] = {}
        self._dispatch_queue: Deque[int] = deque()
        self._outstanding: Dict[int, ShardHandle] = {}
        self._admit_rr = 0
        self._tracker = DeltaTracker(service.state)
        self._deltas: Dict[int, LinkStateDelta] = {}
        self._planner = EpochPlanner(
            service.network,
            scheme_name,
            DatabaseSnapshot.capture(service.state, 0),
            risk_groups=risk_groups,
        )
        self._pool = ShardPool(
            self._shard_config, workers, retry_policy=retry_policy
        )
        self._bind_metrics(registry)

    def _shard_config(self, worker_id: int, generation: int) -> ShardConfig:
        return ShardConfig(
            worker_id=worker_id,
            generation=generation,
            scheme_name=self.scheme_name,
            network=self.service.network,
            risk_groups=self.risk_groups,
            manifest_dir=self.manifest_dir,
            trace_dir=self.trace_dir,
        )

    def _bind_metrics(self, registry) -> None:
        if registry is None:
            self._m_plans = self._m_requeues = self._m_resyncs = None
            self._m_replans = self._m_restarts = None
            return
        self._m_plans = registry.counter(
            "drtp_cluster_plans_total",
            "admissions planned by each shard", labels=("shard",),
        )
        self._m_requeues = registry.counter(
            "drtp_cluster_requeues_total",
            "in-flight plans replanned inline after a shard death",
            labels=("shard",),
        )
        self._m_resyncs = registry.counter(
            "drtp_cluster_resyncs_total",
            "full-snapshot resyncs sent to a shard", labels=("shard",),
        )
        self._m_restarts = registry.counter(
            "drtp_cluster_shard_restarts_total",
            "shard processes respawned after death", labels=("shard",),
        )
        self._m_replans = registry.counter(
            "drtp_cluster_authority_replans_total",
            "stale shard plans replanned live at the commit authority",
        )
        registry.gauge(
            "drtp_cluster_epoch",
            "newest replicated link-state epoch",
        ).collect_with(lambda: self._captured)
        registry.gauge(
            "drtp_cluster_inflight_plans",
            "admissions dispatched to shards and not yet committed",
        ).collect_with(lambda: len(self._outstanding))

    # ------------------------------------------------------------------
    # Front-end API (asyncio thread)
    # ------------------------------------------------------------------

    def bind_loop(self, loop) -> None:
        """Attach the asyncio loop futures must be resolved on."""
        self._loop = loop

    def start(self) -> None:
        """Launch the engine thread."""
        self._thread = threading.Thread(
            target=self._run, name="cluster-engine", daemon=True
        )
        self._thread.start()

    def submit(self, kind: str, args: Dict[str, Any], future, op_span) -> None:
        """Enqueue one pre-validated mutation (called in arrival order)."""
        self.inbound.put(_PendingOp(
            seq=-1, kind=kind, args=args, future=future, op_span=op_span,
        ))

    def drain_and_stop(self) -> None:
        """Commit everything submitted, stop the shards, merge traces.

        Blocking — the server calls it from an executor thread."""
        self.inbound.put(_DRAIN)
        if self._thread is not None:
            self._thread.join()
        self._ingest_shard_traces()

    def outstanding_count(self) -> int:
        """Plans currently dispatched and unanswered (test/oracle hook)."""
        return len(self._outstanding)

    def shard_pids(self) -> List[int]:
        """Live shard process ids, by shard slot."""
        return [shard.process.pid for shard in self._pool.shards]

    def status(self) -> Dict[str, Any]:
        """The cluster section of the status op / server manifest."""
        shards = []
        for shard in self._pool.shards:
            entry = {
                "shard": shard.worker_id,
                "pid": shard.process.pid,
                "generation": shard.generation,
                "alive": shard.alive,
                "planned": shard.planned,
                "requeued": shard.requeued,
                "resyncs": shard.resyncs,
                "restarts": shard.restarts,
            }
            report = self.shard_reports.get(shard.worker_id)
            if report is not None:
                entry["final_report"] = report
            shards.append(entry)
        return {
            "workers": len(self._pool.shards),
            "batch": self.batch,
            "lookahead": self.lookahead,
            "epoch": self._captured,
            "committed": self._commit_seq,
            "replans": self.stats.replans,
            "requeues": self.requeues,
            "inline_plans": self.inline_plans,
            "stale_results": self.stale_results,
            "deltas_sent": self.deltas_sent,
            "snapshots_sent": self.snapshots_sent,
            "shards": shards,
        }

    # ------------------------------------------------------------------
    # Engine thread
    # ------------------------------------------------------------------

    def _run(self) -> None:
        try:
            while True:
                progressed = self._drain_inbound()
                progressed |= self._reap_and_requeue()
                progressed |= self._dispatch()
                progressed |= self._collect()
                progressed |= self._commit()
                self._advance_floor()
                if (
                    self._draining
                    and not self._pending
                    and self.inbound.empty()
                ):
                    break
                if not progressed:
                    self._idle_wait()
        finally:
            self._shutdown_pool()

    def _drain_inbound(self, block: bool = False) -> bool:
        progressed = False
        while True:
            try:
                if block and not progressed:
                    item = self.inbound.get(timeout=0.1)
                else:
                    item = self.inbound.get_nowait()
            except queue.Empty:
                return progressed
            progressed = True
            if item is _DRAIN:
                self._draining = True
                continue
            item.seq = self._next_seq
            self._next_seq += 1
            if item.kind == "admit":
                self._dispatch_queue.append(item.seq)
            else:
                item.ready = True
            self._pending[item.seq] = item

    def _reap_and_requeue(self) -> bool:
        dead = self._pool.reap()
        if not dead:
            return False
        if self._m_restarts is not None:
            for shard in dead:
                self._m_restarts.inc(1, str(shard.worker_id))
        self._requeue_outstanding()
        return True

    def _requeue_outstanding(self) -> None:
        """Replan every in-flight admission inline, in seq order.

        Called when any shard dies: the dead shard's plans are gone,
        and replanning the *other* shards' in-flight plans too keeps
        the inline planner's epoch monotone across staggered deaths
        (their late replies are then dropped by the stale-result
        check).  The plans are identical either way."""
        for seq in sorted(self._outstanding):
            owner = self._outstanding.pop(seq)
            op = self._pending[seq]
            target = epoch_for(seq, self.batch, self.lookahead)
            self._planner.advance_to(target, self._deltas)
            op.plan = self._planner.plan(
                op.args["source"], op.args["destination"], op.args["bw"]
            )
            op.ready = True
            self.requeues += 1
            slot = next(
                (
                    shard
                    for shard in self._pool.shards
                    if shard.worker_id == owner.worker_id
                ),
                None,
            )
            if slot is not None:
                slot.requeued += 1
            if self._m_requeues is not None:
                self._m_requeues.inc(1, str(owner.worker_id))

    def _pick_slot(self) -> Optional[ShardHandle]:
        live = self._pool.live_shards()
        if not live:
            return None
        slot = live[self._admit_rr % len(live)]
        self._admit_rr += 1
        return slot

    def _dispatch(self) -> bool:
        """Fan dispatchable admissions out to the shard pool.

        Ops are dispatched *per epoch run*, not per request: every
        contiguous run of queue heads sharing one (already captured)
        target epoch is split across the live shards and shipped as
        one ``plan_batch`` queue hop per shard — with replies batched
        symmetrically, the per-request multiprocessing round-trips
        that dominated the router's critical path collapse by the
        batch factor.  Plans are pure functions of (epoch view,
        request), so how a run is split can never change a decision.
        """
        progressed = False
        while self._dispatch_queue:
            target = epoch_for(
                self._dispatch_queue[0], self.batch, self.lookahead
            )
            if target > self._captured:
                break  # epochs are seq-monotone; later ops wait too
            run: List[int] = []
            while self._dispatch_queue:
                seq = self._dispatch_queue[0]
                if epoch_for(seq, self.batch, self.lookahead) != target:
                    break
                self._dispatch_queue.popleft()
                run.append(seq)
            live = len(self._pool.live_shards())
            if live == 0:
                # Every shard is gone (retry policy exhausted): the
                # router degrades to planning inline, still correct.
                self._planner.advance_to(target, self._deltas)
                for seq in run:
                    op = self._pending[seq]
                    op.plan = self._planner.plan(
                        op.args["source"], op.args["destination"],
                        op.args["bw"],
                    )
                    op.ready = True
                    self.inline_plans += 1
            else:
                for chunk in self._split_run(run, live):
                    slot = self._pick_slot()
                    if slot is None:  # pragma: no cover - raced death
                        self._dispatch_queue.extendleft(reversed(chunk))
                        break
                    self._sync_slot(slot, target)
                    slot.queue.put(("plan_batch", target, [
                        (seq, self._pending[seq].args) for seq in chunk
                    ]))
                    for seq in chunk:
                        self._outstanding[seq] = slot
            progressed = True
        return progressed

    @staticmethod
    def _split_run(run: List[int], shards: int) -> List[List[int]]:
        """Split one epoch's dispatch run into at most ``shards``
        contiguous chunks, as evenly as possible, so every live shard
        works the epoch concurrently."""
        chunks = min(len(run), shards)
        size, extra = divmod(len(run), chunks)
        out: List[List[int]] = []
        start = 0
        for index in range(chunks):
            end = start + size + (1 if index < extra else 0)
            out.append(run[start:end])
            start = end
        return out

    def _sync_slot(self, slot: ShardHandle, target: int) -> None:
        """Put the deltas (or a snapshot) bringing ``slot`` to
        ``target`` on its FIFO queue, ahead of the plan message."""
        if slot.last_epoch is not None and slot.last_epoch >= target:
            return
        start = slot.last_epoch
        if start is None or start < self._planner.replica.epoch:
            # Fresh shard, or lagging behind delta retention: resync.
            slot.queue.put(("snapshot", self._snapshot_at(target)))
            self.snapshots_sent += 1
            if start is not None:
                slot.resyncs += 1
                if self._m_resyncs is not None:
                    self._m_resyncs.inc(1, str(slot.worker_id))
            slot.last_epoch = target
            return
        while slot.last_epoch < target:
            slot.queue.put(("delta", self._deltas[slot.last_epoch + 1]))
            slot.last_epoch += 1
            self.deltas_sent += 1

    def _snapshot_at(self, target: int) -> DatabaseSnapshot:
        clone = self._planner.replica.clone()
        while clone.epoch < target:
            clone.ingest(self._deltas[clone.epoch + 1])
        return clone.snapshot()

    def _collect(self, block: bool = False) -> bool:
        progressed = False
        while True:
            try:
                if block and not progressed:
                    message = self._pool.results.get(timeout=0.05)
                else:
                    message = self._pool.results.get_nowait()
            except queue.Empty:
                return progressed
            progressed = True
            self._handle_result(message)

    def _handle_result(self, message) -> None:
        kind = message[0]
        if kind == "planned":
            _, worker_id, generation, seq, plan = message
            slot = self._pool.find(worker_id, generation)
            owner = self._outstanding.get(seq)
            if slot is None or owner is not slot:
                self.stale_results += 1
                return
            del self._outstanding[seq]
            op = self._pending[seq]
            op.plan = plan
            op.ready = True
            slot.planned += 1
            if self._m_plans is not None:
                self._m_plans.inc(1, str(worker_id))
        elif kind == "planned_batch":
            _, worker_id, generation, planned = message
            slot = self._pool.find(worker_id, generation)
            for seq, plan in planned:
                owner = self._outstanding.get(seq)
                if slot is None or owner is not slot:
                    self.stale_results += 1
                    continue
                del self._outstanding[seq]
                op = self._pending[seq]
                op.plan = plan
                op.ready = True
                slot.planned += 1
                if self._m_plans is not None:
                    self._m_plans.inc(1, str(worker_id))
        elif kind == "desync":
            # A shard refused a dispatch (should be unreachable under
            # FIFO delivery): force a snapshot resync and replan its
            # in-flight admissions inline so nothing hangs.
            _, worker_id, generation = message
            slot = self._pool.find(worker_id, generation)
            if slot is not None:
                slot.last_epoch = None
            self._requeue_outstanding()
        elif kind == "stopped":
            _, worker_id, generation, report = message
            self.shard_reports[worker_id] = report

    def _commit(self) -> bool:
        progressed = False
        while True:
            op = self._pending.get(self._commit_seq)
            if op is None or not op.ready:
                break
            del self._pending[self._commit_seq]
            self._apply_and_resolve(op)
            self._commit_seq += 1
            if self._commit_seq % self.batch == 0:
                epoch = self._commit_seq // self.batch
                self._deltas[epoch] = self._tracker.capture(epoch)
                self._captured = epoch
            progressed = True
        if progressed and self._server_stats is not None:
            self._server_stats.batches += 1
        return progressed

    def _apply_and_resolve(self, op: _PendingOp) -> None:
        result = None
        error: Optional[BaseException] = None
        span = (
            self.trace.span(
                "server.apply", category="server",
                parent=op.op_span, op=op.kind, seq=op.seq,
            )
            if self.trace is not None
            else nullcontext()
        )
        with self.lock, span:
            try:
                result = self._apply(op)
            except Exception as exc:  # surfaced as ERR_INTERNAL upstream
                error = exc
        loop = self._loop

        def _finish(future=op.future, result=result, error=error):
            if future.done():
                return
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)

        if loop is not None:
            loop.call_soon_threadsafe(_finish)
        else:  # headless engine (tests drive it without a server)
            _finish()

    def _apply(self, op: _PendingOp) -> Dict[str, Any]:
        if op.kind == "admit":
            return commit_admission(
                self.service, op.args, op.plan, self.stats
            )
        if op.kind == "release":
            return ops.apply_release(self.service, op.args["connection"])
        if op.kind == "fail_link":
            return ops.apply_fail_link(self.service, op.args["link"])
        if op.kind == "repair_link":
            return ops.apply_repair_link(self.service, op.args["link"])
        raise ValueError("unexpected mutation kind {!r}".format(op.kind))

    def _advance_floor(self) -> None:
        """Eagerly advance the inline planner to the lowest epoch any
        future dispatch or replan can need, then drop passed deltas —
        this bounds delta retention to the pipeline depth."""
        target = epoch_for(self._commit_seq, self.batch, self.lookahead)
        if target > self._planner.replica.epoch:
            self._planner.advance_to(target, self._deltas)
        floor = self._planner.replica.epoch
        for epoch in [e for e in self._deltas if e <= floor]:
            del self._deltas[epoch]

    def _idle_wait(self) -> None:
        if self._outstanding:
            self._collect(block=True)
        else:
            self._drain_inbound(block=True)

    def _shutdown_pool(self) -> None:
        self._pool.shutdown()
        while True:
            try:
                message = self._pool.results.get_nowait()
            except queue.Empty:
                break
            except (OSError, ValueError):  # pragma: no cover - closed queue
                break
            if message[0] == "stopped":
                self.shard_reports[message[1]] = message[3]
        self._tracker.close()

    def _ingest_shard_traces(self) -> None:
        """Stitch the shard NDJSON exports into the router's collector
        (each shard becomes a ``pid`` lane in the merged trace)."""
        if self.trace is None or self.trace_dir is None:
            return
        for path in sorted(Path(self.trace_dir).glob("shard-*.ndjson")):
            try:
                worker_id = int(path.stem.split("-")[1])
            except (IndexError, ValueError):  # pragma: no cover
                continue
            meta, spans = read_ndjson(path)
            self.trace.ingest(
                spans, pid=worker_id + 1, dropped=meta.get("dropped", 0)
            )
