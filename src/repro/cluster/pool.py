"""Shard process lifecycle: spawn, reap, respawn, shut down.

The same process plumbing as the campaign
:class:`~repro.campaign.pool.WorkerPool` — one dispatch queue per
worker, a shared result queue, generation tags so replies from a dead
generation are discarded, ``cancel_join_thread`` on abandoned queues —
but for long-lived admission shards instead of run-to-completion
jobs.  Requeue policy differs accordingly: a shard's in-flight *plans*
are replanned inline by the router (see
:class:`~repro.cluster.engine.ClusterEngine`), so the pool only
manages processes, and the campaign
:class:`~repro.faults.retry.RetryPolicy` governs how often a
crash-looping shard slot may be respawned before it is abandoned.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, List, Optional

from ..campaign.pool import DEFAULT_RETRY_POLICY, _start_method
from ..faults.retry import RetryPolicy
from .worker import shard_worker_main


@dataclass
class ShardHandle:
    """One shard slot: the live process plus its dispatch bookkeeping."""

    worker_id: int
    generation: int
    process: Any
    queue: Any
    #: Epoch of the last delta/snapshot sent; None = fresh, needs a
    #: full snapshot before its first plan dispatch.
    last_epoch: Optional[int] = None
    #: Plans answered by this slot (any generation).
    planned: int = 0
    #: In-flight plans replanned inline after this slot died.
    requeued: int = 0
    #: Snapshot resyncs sent after the initial bootstrap snapshot.
    resyncs: int = 0
    #: Times the slot was respawned after a death.
    restarts: int = 0
    #: Respawn attempts charged against the retry policy.
    attempts: int = 0
    first_failure_at: Optional[float] = None
    abandoned: bool = False

    @property
    def alive(self) -> bool:
        return not self.abandoned and self.process.is_alive()


class ShardPool:
    """Spawn and supervise the admission-shard processes."""

    def __init__(
        self,
        config_factory,
        workers: int,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        """``config_factory(worker_id, generation)`` must return the
        :class:`~repro.cluster.worker.ShardConfig` for a (re)spawn."""
        if workers < 1:
            raise ValueError("a cluster needs at least one shard")
        self._config_factory = config_factory
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self._ctx = multiprocessing.get_context(_start_method())
        self.results = self._ctx.Queue()
        self.shards: List[ShardHandle] = [
            self._spawn(worker_id, 0) for worker_id in range(workers)
        ]

    def _spawn(self, worker_id: int, generation: int) -> ShardHandle:
        dispatch = self._ctx.Queue()
        config = self._config_factory(worker_id, generation)
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(config, dispatch, self.results),
            daemon=True,
        )
        process.start()
        return ShardHandle(
            worker_id=worker_id,
            generation=generation,
            process=process,
            queue=dispatch,
        )

    def live_shards(self) -> List[ShardHandle]:
        """Slots currently able to take dispatches."""
        return [shard for shard in self.shards if shard.alive]

    def reap(self) -> List[ShardHandle]:
        """Respawn every dead slot; returns the handles that died (with
        their pre-respawn generation) so the engine can requeue.

        A slot whose respawns exhaust the retry policy is abandoned:
        the cluster keeps serving on the remaining shards (decisions do
        not depend on shard assignment, only throughput does).
        """
        dead: List[ShardHandle] = []
        for index, shard in enumerate(self.shards):
            if shard.abandoned or shard.process.is_alive():
                continue
            shard.process.join(timeout=0.1)
            shard.queue.cancel_join_thread()
            dead.append(shard)
            now = time.monotonic()
            if shard.first_failure_at is None:
                shard.first_failure_at = now
            attempts = shard.attempts + 1
            if self.retry_policy.gives_up(
                attempts, now - shard.first_failure_at
            ):
                shard.abandoned = True
                continue
            replacement = self._spawn(shard.worker_id, shard.generation + 1)
            replacement.planned = shard.planned
            replacement.requeued = shard.requeued
            replacement.resyncs = shard.resyncs
            replacement.restarts = shard.restarts + 1
            replacement.attempts = attempts
            replacement.first_failure_at = shard.first_failure_at
            self.shards[index] = replacement
        return dead

    def find(self, worker_id: int, generation: int) -> Optional[ShardHandle]:
        """The slot matching a reply's tags, or None if it moved on."""
        for shard in self.shards:
            if shard.worker_id == worker_id and shard.generation == generation:
                return shard
        return None

    def shutdown(self, timeout: float = 5.0) -> None:
        """Sentinel every live shard, join, terminate stragglers."""
        for shard in self.shards:
            if shard.alive:
                try:
                    shard.queue.put(None)
                except (OSError, ValueError):  # pragma: no cover - teardown race
                    pass
        deadline = time.monotonic() + timeout
        for shard in self.shards:
            if shard.abandoned:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            shard.process.join(timeout=remaining)
            if shard.process.is_alive():  # pragma: no cover - hung worker
                shard.process.terminate()
                shard.process.join(timeout=1.0)
            shard.queue.cancel_join_thread()
        self.results.cancel_join_thread()
