"""The cluster's frontend router: the NDJSON server, sharded.

:class:`ClusterControlPlaneServer` speaks exactly the protocol of the
single-process :class:`~repro.server.app.ControlPlaneServer` it
subclasses — same framing, same ops, same manifest discipline — but
its writer loop hands every mutation to a
:class:`~repro.cluster.engine.ClusterEngine` instead of applying it
inline: admissions are planned on N shard processes against replicated
link-state epochs and serialized through the single commit authority.
Clients cannot tell the difference except in the ``status`` op's extra
``cluster`` section and in throughput.

Reads (``status`` / ``metrics`` / ``ping``) still answer on the
asyncio thread, under the engine's commit lock, so a scrape always
observes a commit boundary.  Shutdown drains through the engine: every
accepted mutation commits, shards flush and write their manifests, and
their span files are stitched into the router's merged trace before
the base class writes it out.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from ..metrics import ServiceMetrics
from ..server import protocol
from ..server.app import _SENTINEL, ControlPlaneServer
from ..server.protocol import ProtocolError, Request
from ..topology.srlg import RiskGroupSet
from .authority import DEFAULT_BATCH, DEFAULT_LOOKAHEAD
from .engine import ClusterEngine


class ClusterControlPlaneServer(ControlPlaneServer):
    """Serve one DRTP service through N admission shards."""

    def __init__(
        self,
        service,
        metrics: Optional[ServiceMetrics] = None,
        *,
        scheme_name: str,
        workers: int,
        batch: int = DEFAULT_BATCH,
        lookahead: int = DEFAULT_LOOKAHEAD,
        risk_groups: Optional[RiskGroupSet] = None,
        cluster_dir: Optional[str] = None,
        retry_policy=None,
        **kwargs: Any,
    ) -> None:
        super().__init__(service, metrics, **kwargs)
        self._engine = ClusterEngine(
            service,
            scheme_name,
            workers,
            batch=batch,
            lookahead=lookahead,
            risk_groups=risk_groups,
            registry=self.metrics.registry,
            trace=self.trace,
            server_stats=self.stats,
            manifest_dir=cluster_dir,
            trace_dir=self.trace_dir,
            retry_policy=retry_policy,
        )

    @property
    def engine(self) -> ClusterEngine:
        """The commit engine (tests and the oracle poke at it)."""
        return self._engine

    async def start(self) -> None:
        await super().start()
        self._engine.bind_loop(self._loop)
        self._engine.start()

    async def _writer_loop(self) -> None:
        """Forward mutations to the engine in arrival order; on the
        shutdown sentinel, drain it from an executor thread (the drain
        blocks on in-flight shard plans)."""
        loop = asyncio.get_event_loop()
        while True:
            item = await self._mutations.get()
            if item is _SENTINEL:
                await loop.run_in_executor(None, self._engine.drain_and_stop)
                return
            request, future, op_span = item
            try:
                kind, args = self._parse_mutation(request)
            except ProtocolError as exc:
                if not future.cancelled():
                    future.set_exception(exc)
                continue
            self._engine.submit(kind, args, future, op_span)

    def _parse_mutation(self, request: Request):
        """Validate a mutation up front (the engine thread and the
        shards only ever see canonical argument dicts)."""
        if request.op == "admit":
            return "admit", self._parse_admit(request)
        if request.op == "release":
            connection = protocol.require_int(
                request.args, "connection", request.id
            )
            return "release", {"connection": connection}
        if request.op == "fail_link":
            return "fail_link", {"link": self._require_link(request)}
        if request.op == "repair_link":
            return "repair_link", {"link": self._require_link(request)}
        raise ProtocolError(  # pragma: no cover - dispatch guarantees ops
            protocol.ERR_BAD_REQUEST,
            "unexpected mutation op {!r}".format(request.op),
            request.id,
        )

    def _apply_read(self, request: Request) -> Dict[str, Any]:
        # Reads share the engine's commit lock so status counters and
        # metric scrapes always observe a commit boundary.
        with self._engine.lock:
            return super()._apply_read(request)

    def _op_status(self) -> Dict[str, Any]:
        status = super()._op_status()
        status["cluster"] = self._engine.status()
        return status

    def manifest(self) -> Dict[str, Any]:
        manifest = super().manifest()
        manifest["cluster"] = self._engine.status()
        return manifest
