"""Chaos campaigns: a workload replayed under a fault plan.

A campaign drives one :class:`~repro.core.service.DRTPService` through
a Poisson DR-connection workload while the
:class:`~repro.faults.injector.FaultInjector` makes its life hard:
register packets drop, routers crash mid-walk, links flap singly and
in correlated bursts, and the link-state database serves bounded-stale
records.  After **every** injected fault the runner re-checks the
service's cross-layer invariants — a chaos campaign that finishes is a
proof that no fault sequence in it could corrupt resource accounting.

The runner measures what the paper's Section 2.3 re-establishment loop
is for: when signaling faults force a degraded (unprotected) admission,
how long until the background retry restores the backup, and what
fraction of degraded connections ever ride unprotected into a failure
or their own departure.

Determinism: workload and faults derive from independent streams of
one master seed, so ``run_campaign(plan, config)`` twice yields
``ChaosReport.to_dict()``-identical results — asserted by the smoke
test and by ``repro chaos --verify``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.chaos_report import ChaosReport
from ..core.multiplexing import GroupAwareSparePolicy
from ..core.service import DRTPService
from ..simulation.arrivals import HoldingTimeDistribution
from ..simulation.engine import Engine
from ..simulation.rng import derive_seed
from ..simulation.scenario import generate_scenario
from ..simulation.tracing import Tracer, TracingService
from ..topology.mesh import mesh_network
from ..topology.srlg import mesh_conduit_groups
from .injector import (
    BURST_DOWN,
    BURST_UP,
    FLAP_DOWN,
    FLAP_UP,
    REFRESH,
    REGIONAL_DOWN,
    REGIONAL_UP,
    STALENESS,
    FaultInjector,
)
from .plan import FaultPlan
from .retry import RetryPolicy

#: How a degraded connection's wait for re-protection ended.
_REPROTECTED = "reprotected"
_DEPARTED = "departed"


@dataclass(frozen=True)
class CampaignConfig:
    """Workload and environment of one chaos campaign (the paper's
    8x8 torus evaluation topology by default)."""

    rows: int = 8
    cols: int = 8
    capacity: float = 30.0
    scheme: str = "D-LSR"
    arrival_rate: float = 2.0
    duration: float = 600.0
    holding_min: float = 60.0
    holding_max: float = 240.0
    bw_req: float = 1.0
    seed: int = 0
    #: Background re-protection cadence for degraded connections.
    backup_retry_interval: float = 5.0
    #: Residual-unprotection sampling points over the horizon.
    unprotected_samples: int = 32
    #: After the horizon: repair every link, re-flood, and drain the
    #: re-protection queue — models the control plane finishing its
    #: queued work once the adversity stops.
    settle: bool = True
    #: Shared-risk model: ``"none"`` keeps the paper's per-link world;
    #: ``"conduits"`` bundles the mesh's row/column conduits into an
    #: SRLG assignment, sizes spare with
    #: :class:`~repro.core.multiplexing.GroupAwareSparePolicy`, and
    #: lets the plan's regional family cut whole conduits.
    srlg: str = "none"

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.backup_retry_interval <= 0:
            raise ValueError("backup_retry_interval must be positive")
        if self.srlg not in ("none", "conduits"):
            raise ValueError(
                "srlg must be 'none' or 'conduits', got {!r}".format(
                    self.srlg
                )
            )


def run_campaign(
    plan: FaultPlan,
    config: Optional[CampaignConfig] = None,
    retry_policy: Optional[RetryPolicy] = None,
    tracer: Optional[Tracer] = None,
) -> ChaosReport:
    """Replay one seeded workload under one fault plan; return the
    measured :class:`~repro.analysis.chaos_report.ChaosReport`."""
    config = config or CampaignConfig()
    retry_policy = retry_policy or RetryPolicy()

    network = mesh_network(config.rows, config.cols, config.capacity)
    scenario = generate_scenario(
        num_nodes=network.num_nodes,
        arrival_rate=config.arrival_rate,
        duration=config.duration,
        bw_req=config.bw_req,
        holding=HoldingTimeDistribution(
            minimum=config.holding_min, maximum=config.holding_max
        ),
        seed=derive_seed(config.seed, "workload"),
    )
    injector = FaultInjector(plan, seed=derive_seed(config.seed, "faults"))

    risk_groups = None
    spare_policy = None
    if config.srlg == "conduits":
        risk_groups = mesh_conduit_groups(network, config.rows, config.cols)
        spare_policy = GroupAwareSparePolicy()

    from ..experiments import make_scheme

    bare = DRTPService(
        network,
        make_scheme(config.scheme),
        spare_policy=spare_policy,
        fault_injector=injector,
        retry_policy=retry_policy,
        risk_groups=risk_groups,
    )
    service = TracingService(bare, tracer) if tracer is not None else bare

    report = ChaosReport(
        plan_name=plan.name,
        seed=config.seed,
        scheme=config.scheme,
        duration=config.duration,
        srlg_mode=config.srlg,
    )
    engine = Engine()

    # Connection ids currently waiting for re-protection -> the time
    # they became unprotected; which of them were *admitted* degraded
    # (the set the headline recovery ratio is over); and each degraded
    # admission's first-resolution outcome.  A connection can wait more
    # than once (a later failure may strip a regained backup) — every
    # wait is retried and timed, but the ratio counts first outcomes.
    waiting_since: Dict[int, float] = {}
    degraded_admitted: set = set()
    first_outcome: Dict[int, str] = {}

    def resolve(connection_id: int, outcome: str, now: float) -> None:
        since = waiting_since.pop(connection_id, None)
        if since is None:
            return
        first_outcome.setdefault(connection_id, outcome)
        if outcome == _REPROTECTED:
            report.recovery_latencies.append(now - since)

    def sweep_waiting(now: float) -> None:
        """Settle any waiting connection whose fate changed sideways:
        re-protected by failure reconfiguration, or gone."""
        for connection_id in list(waiting_since):
            if not service.has_connection(connection_id):
                resolve(connection_id, _DEPARTED, now)
                continue
            conn = service.connection(connection_id)
            if not conn.is_active:
                resolve(connection_id, _DEPARTED, now)
            elif conn.backup is not None:
                resolve(connection_id, _REPROTECTED, now)

    def start_waiting(connection_id: int, now: float) -> None:
        if connection_id in waiting_since:
            return
        waiting_since[connection_id] = now
        schedule_retry(connection_id)

    def schedule_retry(connection_id: int) -> None:
        interval = config.backup_retry_interval

        def attempt() -> None:
            now = engine.now
            if tracer is not None:
                service.at(now)
            if not service.has_connection(connection_id):
                resolve(connection_id, _DEPARTED, now)
                return
            if service.reestablish_backup(connection_id):
                resolve(connection_id, _REPROTECTED, now)
                return
            if now + interval <= config.duration:
                engine.schedule_after(interval, attempt)

        engine.schedule_after(interval, attempt)

    # -- workload ---------------------------------------------------------
    def arrive(request):
        def action() -> None:
            now = engine.now
            if tracer is not None:
                service.at(now)
            decision = service.admit(request)
            if decision.accepted:
                engine.schedule(request.departure_time, depart(request))
                if decision.degraded:
                    degraded_admitted.add(request.request_id)
                    start_waiting(request.request_id, now)

        return action

    def depart(request):
        def action() -> None:
            now = engine.now
            if tracer is not None:
                service.at(now)
            if service.has_connection(request.request_id):
                service.release(request.request_id)
            resolve(request.request_id, _DEPARTED, now)

        return action

    for request in scenario.requests:
        engine.schedule(request.arrival_time, arrive(request))

    # -- injected faults --------------------------------------------------
    def apply_fault(fault):
        def action() -> None:
            now = engine.now
            if tracer is not None:
                service.at(now)
                service.record_fault(fault.kind, links=list(fault.links))
            if fault.kind in (FLAP_DOWN, BURST_DOWN):
                for link_id in fault.links:
                    if not service.state.is_link_failed(link_id):
                        service.fail_link(link_id, reconfigure=True)
            elif fault.kind == REGIONAL_DOWN:
                # The whole region dies at once: one activation round
                # over the surviving spare (simultaneous semantics),
                # not a per-link cascade.
                fresh = [
                    link_id
                    for link_id in fault.links
                    if not service.state.is_link_failed(link_id)
                ]
                if fresh:
                    impact = service.fail_link_set(fresh, reconfigure=True)
                    report.absorb_group_impact(impact, len(fresh))
            elif fault.kind in (FLAP_UP, BURST_UP, REGIONAL_UP):
                for link_id in fault.links:
                    if service.state.is_link_failed(link_id):
                        service.repair_link(link_id)
            elif fault.kind == STALENESS:
                service.database.inject_staleness()
            elif fault.kind == REFRESH:
                service.database.refresh()
            report.faults_injected[fault.kind] = (
                report.faults_injected.get(fault.kind, 0) + 1
            )
            # The campaign's core guarantee: no injected fault may ever
            # corrupt the cross-layer resource accounting.
            service.check_invariants()
            report.invariant_checks += 1
            # Failures can strand survivors unprotected (spare shortage
            # during reconfiguration); queue them for re-protection.
            for connection_id in service.unprotected_ids():
                if service.queue_backup_reestablishment(connection_id):
                    start_waiting(connection_id, now)
            sweep_waiting(now)

        return action

    for fault in injector.schedule(
        network, config.duration, risk_groups=risk_groups
    ):
        if fault.time < config.duration:
            engine.schedule(fault.time, apply_fault(fault))

    # -- residual-unprotection sampling -----------------------------------
    def sample() -> None:
        report.unprotected_samples.append(
            (
                engine.now,
                len(service.unprotected_ids()),
                service.active_connection_count,
            )
        )

    for index in range(config.unprotected_samples):
        time = config.duration * (index + 1) / config.unprotected_samples
        engine.schedule(min(time, config.duration), sample)

    engine.run(until=config.duration)

    # -- settle: adversity over, drain the re-protection queue ------------
    sweep_waiting(config.duration)
    if config.settle and waiting_since:
        if tracer is not None:
            service.at(config.duration)
        for link_id in sorted(service.state.failed_links()):
            service.repair_link(link_id)
        service.database.refresh()
        progress = True
        while progress and waiting_since:
            progress = False
            for connection_id in sorted(waiting_since):
                if not service.has_connection(connection_id):
                    resolve(connection_id, _DEPARTED, config.duration)
                    progress = True
                elif service.reestablish_backup(connection_id):
                    resolve(connection_id, _REPROTECTED, config.duration)
                    progress = True
        service.check_invariants()
        report.invariant_checks += 1

    # -- fill the report --------------------------------------------------
    counters = service.counters
    report.requests = counters.requests
    report.accepted = counters.accepted
    report.rejected = dict(counters.rejected)
    report.released = counters.released
    report.final_active = service.active_connection_count
    report.signaling_walks = counters.signaling_walks
    report.signaling_retries = counters.signaling_retries
    report.signaling_drops = counters.signaling_drops
    report.signaling_crashes = counters.signaling_crashes
    report.signaling_duplicates = counters.signaling_duplicates
    report.signaling_delay = counters.signaling_delay
    report.degraded_admissions = counters.degraded_admissions
    report.reestablish_attempts = counters.reestablish_attempts
    report.backups_reestablished = counters.backups_reestablished
    report.degraded_reprotected = sum(
        1
        for connection_id in degraded_admitted
        if first_outcome.get(connection_id) == _REPROTECTED
    )
    report.degraded_departed_unprotected = sum(
        1
        for connection_id in degraded_admitted
        if first_outcome.get(connection_id) == _DEPARTED
    )
    report.degraded_unresolved = (
        len(degraded_admitted)
        - report.degraded_reprotected
        - report.degraded_departed_unprotected
    )
    return report
