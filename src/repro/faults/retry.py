"""Retry policy for lossy control-plane signaling.

Real signaling protocols survive packet loss with acknowledgement
timeouts and retransmission; this module provides the deterministic
equivalent: capped exponential backoff with jitter and an overall
deadline.  The policy is *pure* — jitter randomness comes from the
caller's seeded stream (see :mod:`repro.faults.injector`), so a
campaign replayed from the same seed backs off identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff + jitter + deadline.

    Attempt numbering: attempt 1 is the initial transmission;
    ``backoff(1)`` is the wait before attempt 2, and so on.  A policy
    gives up when either ``max_attempts`` walks have faulted or the
    cumulative signaling time (injected delays plus backoffs) crosses
    ``deadline``.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    deadline: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                "need 0 <= base_delay <= max_delay, got [{}, {}]".format(
                    self.base_delay, self.max_delay
                )
            )
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Wait before retrying after the ``attempt``-th failed walk."""
        if attempt < 1:
            raise ValueError("attempt numbering starts at 1")
        raw = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)

    def gives_up(self, attempts: int, elapsed: float) -> bool:
        """True once another retry would be futile."""
        return attempts >= self.max_attempts or elapsed >= self.deadline
