"""Declarative fault plans.

A :class:`FaultPlan` says *what adversity* a chaos campaign subjects
the control plane to — never *when*; the when is sampled by the
seed-driven :class:`~repro.faults.injector.FaultInjector`, so one plan
plus one seed is a bit-for-bit reproducible campaign.  Plans
round-trip through JSON so a failing campaign can be archived and
replayed.

Fault families (all opt-in, all independently tunable):

* **signaling** — per-hop drop/delay/duplication of backup-path
  register packets, plus router crashes mid-walk that strand partial
  registrations;
* **flaps** — single links going down and coming back;
* **bursts** — correlated multi-link failures (a shared conduit or a
  line card taking several links of one switch down at once);
* **staleness** — bounded link-state staleness: the database serves a
  frozen snapshot until the next re-flood.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Union

from ..core.errors import FaultInjectionError

_FORMAT_VERSION = 1


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultInjectionError(
            "{} must be a probability in [0, 1], got {}".format(name, value)
        )


def _check_rate(name: str, value: float) -> None:
    if value < 0.0:
        raise FaultInjectionError(
            "{} must be non-negative, got {}".format(name, value)
        )


@dataclass(frozen=True)
class SignalingFaults:
    """Lossy backup-path signaling.

    ``drop_prob``/``delay_prob``/``duplicate_prob`` apply per hop of a
    register-packet walk; ``crash_prob`` applies per walk and models a
    router dying right after registering the backup on its link —
    upstream registrations stand until the source's timeout triggers
    the idempotent unwind.
    """

    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay_min: float = 0.0
    delay_max: float = 0.0
    duplicate_prob: float = 0.0
    crash_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "delay_prob", "duplicate_prob", "crash_prob"):
            _check_prob(name, getattr(self, name))
        if self.delay_min < 0 or self.delay_max < self.delay_min:
            raise FaultInjectionError(
                "need 0 <= delay_min <= delay_max, got [{}, {}]".format(
                    self.delay_min, self.delay_max
                )
            )

    @property
    def enabled(self) -> bool:
        return any(
            (self.drop_prob, self.delay_prob, self.duplicate_prob,
             self.crash_prob)
        )


@dataclass(frozen=True)
class LinkFlapFaults:
    """Independent single-link down/up cycles, Poisson at ``rate``
    flaps per simulated second network-wide; down time is uniform in
    ``[down_min, down_max]`` seconds."""

    rate: float = 0.0
    down_min: float = 1.0
    down_max: float = 10.0

    def __post_init__(self) -> None:
        _check_rate("flap rate", self.rate)
        if self.down_min <= 0 or self.down_max < self.down_min:
            raise FaultInjectionError(
                "need 0 < down_min <= down_max, got [{}, {}]".format(
                    self.down_min, self.down_max
                )
            )

    @property
    def enabled(self) -> bool:
        return self.rate > 0


@dataclass(frozen=True)
class FailureBurstFaults:
    """Correlated multi-link failure bursts.

    At each Poisson burst instant, between ``size_min`` and
    ``size_max`` links fail simultaneously.  ``correlated=True`` draws
    them from the links adjacent to one randomly chosen switch (the
    shared-fate failure mode of a line card or conduit cut);
    ``False`` draws them uniformly from the whole network.
    """

    rate: float = 0.0
    size_min: int = 2
    size_max: int = 4
    down_min: float = 5.0
    down_max: float = 30.0
    correlated: bool = True

    def __post_init__(self) -> None:
        _check_rate("burst rate", self.rate)
        if self.size_min < 1 or self.size_max < self.size_min:
            raise FaultInjectionError(
                "need 1 <= size_min <= size_max, got [{}, {}]".format(
                    self.size_min, self.size_max
                )
            )
        if self.down_min <= 0 or self.down_max < self.down_min:
            raise FaultInjectionError(
                "need 0 < down_min <= down_max, got [{}, {}]".format(
                    self.down_min, self.down_max
                )
            )

    @property
    def enabled(self) -> bool:
        return self.rate > 0


@dataclass(frozen=True)
class RegionalFaults:
    """Correlated failures along *named risk domains*.

    At each Poisson instant (``rate`` events per simulated second) a
    region fails wholesale and every member link dies simultaneously —
    the affected connections race for spare in a single activation
    round, unlike :class:`FailureBurstFaults` whose links are taken
    down one event at a time.

    ``mode="srlg"`` samples between ``groups_min`` and ``groups_max``
    distinct shared-risk groups from the campaign's installed
    :class:`~repro.topology.srlg.RiskGroupSet` (a conduit cut severing
    every fiber in the duct).  ``mode="neighborhood"`` flood-fills
    ``radius`` hops from a random center node and fails every link
    whose both endpoints fall inside (a power or cooling event taking
    out a geographic region).  Down time is uniform in
    ``[down_min, down_max]`` seconds; all links of one event repair
    together.
    """

    rate: float = 0.0
    mode: str = "srlg"
    groups_min: int = 1
    groups_max: int = 1
    radius: int = 1
    down_min: float = 5.0
    down_max: float = 30.0

    def __post_init__(self) -> None:
        _check_rate("regional rate", self.rate)
        if self.mode not in ("srlg", "neighborhood"):
            raise FaultInjectionError(
                "regional mode must be 'srlg' or 'neighborhood', "
                "got {!r}".format(self.mode)
            )
        if self.groups_min < 1 or self.groups_max < self.groups_min:
            raise FaultInjectionError(
                "need 1 <= groups_min <= groups_max, got [{}, {}]".format(
                    self.groups_min, self.groups_max
                )
            )
        if self.radius < 1:
            raise FaultInjectionError(
                "radius must be >= 1, got {}".format(self.radius)
            )
        if self.down_min <= 0 or self.down_max < self.down_min:
            raise FaultInjectionError(
                "need 0 < down_min <= down_max, got [{}, {}]".format(
                    self.down_min, self.down_max
                )
            )

    @property
    def enabled(self) -> bool:
        return self.rate > 0


@dataclass(frozen=True)
class StalenessFaults:
    """Bounded link-state staleness: at Poisson instants the database
    freezes at the current state; a re-flood scheduled at most
    ``max_staleness`` seconds later thaws it."""

    rate: float = 0.0
    max_staleness: float = 5.0

    def __post_init__(self) -> None:
        _check_rate("staleness rate", self.rate)
        if self.max_staleness <= 0:
            raise FaultInjectionError(
                "max_staleness must be positive, got {}".format(
                    self.max_staleness
                )
            )

    @property
    def enabled(self) -> bool:
        return self.rate > 0


@dataclass(frozen=True)
class FaultPlan:
    """The complete declarative description of a chaos campaign's
    adversity."""

    name: str = "custom"
    signaling: SignalingFaults = field(default_factory=SignalingFaults)
    flaps: LinkFlapFaults = field(default_factory=LinkFlapFaults)
    bursts: FailureBurstFaults = field(default_factory=FailureBurstFaults)
    staleness: StalenessFaults = field(default_factory=StalenessFaults)
    regional: RegionalFaults = field(default_factory=RegionalFaults)

    @property
    def enabled_families(self) -> Dict[str, bool]:
        return {
            "signaling": self.signaling.enabled,
            "flaps": self.flaps.enabled,
            "bursts": self.bursts.enabled,
            "staleness": self.staleness.enabled,
            "regional": self.regional.enabled,
        }

    # ------------------------------------------------------------------
    # Canned plans
    # ------------------------------------------------------------------
    @classmethod
    def quiet(cls) -> "FaultPlan":
        """No faults at all (control-group campaigns)."""
        return cls(name="quiet")

    @classmethod
    def everything(cls, intensity: float = 1.0) -> "FaultPlan":
        """Every fault family enabled at a moderate baseline, scaled by
        ``intensity`` (1.0 = default chaos, 2.0 = twice as hostile)."""
        if intensity <= 0:
            raise FaultInjectionError(
                "intensity must be positive, got {}".format(intensity)
            )
        prob = lambda p: min(1.0, p * intensity)  # noqa: E731
        return cls(
            name="everything(x{:g})".format(intensity),
            signaling=SignalingFaults(
                drop_prob=prob(0.02),
                delay_prob=prob(0.05),
                delay_min=0.01,
                delay_max=0.25,
                duplicate_prob=prob(0.02),
                crash_prob=prob(0.01),
            ),
            flaps=LinkFlapFaults(
                rate=0.02 * intensity, down_min=2.0, down_max=15.0
            ),
            bursts=FailureBurstFaults(
                rate=0.004 * intensity, size_min=2, size_max=4,
                down_min=5.0, down_max=30.0,
            ),
            staleness=StalenessFaults(
                rate=0.01 * intensity, max_staleness=5.0
            ),
        )

    @classmethod
    def conduit_cut(
        cls,
        rate: float = 0.01,
        groups_max: int = 1,
        down_min: float = 10.0,
        down_max: float = 40.0,
    ) -> "FaultPlan":
        """Pure correlated-cut adversity: whole shared-risk groups fail
        at Poisson instants, nothing else is injected.  The campaign
        must install a :class:`~repro.topology.srlg.RiskGroupSet`."""
        return cls(
            name="conduit-cut",
            regional=RegionalFaults(
                rate=rate,
                mode="srlg",
                groups_min=1,
                groups_max=groups_max,
                down_min=down_min,
                down_max=down_max,
            ),
        )

    @classmethod
    def regional_blackout(
        cls,
        rate: float = 0.005,
        radius: int = 1,
        down_min: float = 10.0,
        down_max: float = 40.0,
    ) -> "FaultPlan":
        """Geographic adversity: every link inside a ``radius``-hop
        neighborhood of a random center dies at once.  Needs no SRLG
        assignment."""
        return cls(
            name="regional-blackout",
            regional=RegionalFaults(
                rate=rate,
                mode="neighborhood",
                radius=radius,
                down_min=down_min,
                down_max=down_max,
            ),
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["version"] = _FORMAT_VERSION
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if data.get("version") != _FORMAT_VERSION:
            raise FaultInjectionError(
                "unsupported fault-plan version {!r}".format(data.get("version"))
            )
        return cls(
            name=data.get("name", "custom"),
            signaling=SignalingFaults(**data.get("signaling", {})),
            flaps=LinkFlapFaults(**data.get("flaps", {})),
            bursts=FailureBurstFaults(**data.get("bursts", {})),
            staleness=StalenessFaults(**data.get("staleness", {})),
            # Absent in pre-SRLG archives: default (disabled) family.
            regional=RegionalFaults(**data.get("regional", {})),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))
