"""Fault injection for the DRTP control plane.

Declarative plans (:mod:`~repro.faults.plan`), a deterministic
seed-driven injector (:mod:`~repro.faults.injector`), retransmission
policy (:mod:`~repro.faults.retry`) and the chaos-campaign runner
(:mod:`~repro.faults.chaos`).
"""

from .chaos import CampaignConfig, run_campaign
from .injector import (
    BURST_DOWN,
    BURST_UP,
    DELIVER,
    DROP,
    DUPLICATE,
    FLAP_DOWN,
    FLAP_UP,
    REFRESH,
    REGIONAL_DOWN,
    REGIONAL_UP,
    STALENESS,
    FaultInjector,
    TimedFault,
)
from .plan import (
    FailureBurstFaults,
    FaultPlan,
    LinkFlapFaults,
    RegionalFaults,
    SignalingFaults,
    StalenessFaults,
)
from .retry import RetryPolicy

__all__ = [
    "FaultPlan",
    "SignalingFaults",
    "LinkFlapFaults",
    "FailureBurstFaults",
    "StalenessFaults",
    "RegionalFaults",
    "FaultInjector",
    "TimedFault",
    "RetryPolicy",
    "CampaignConfig",
    "run_campaign",
    "DELIVER",
    "DROP",
    "DUPLICATE",
    "FLAP_DOWN",
    "FLAP_UP",
    "BURST_DOWN",
    "BURST_UP",
    "REGIONAL_DOWN",
    "REGIONAL_UP",
    "STALENESS",
    "REFRESH",
]
