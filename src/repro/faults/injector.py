"""Deterministic, seed-driven fault injection.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into concrete adversity:

* per-hop signaling verdicts (deliver / drop / duplicate, plus a
  sampled processing delay) consumed by the faulty register walk in
  :mod:`repro.core.signaling` and :mod:`repro.core.router`;
* per-walk router-crash points that strand partial registrations;
* a pre-sampled schedule of link flaps, correlated failure bursts and
  link-state staleness windows for the campaign runner to replay.

Every stochastic choice draws from a named stream derived from one
master seed (:func:`~repro.simulation.rng.seeded_rng`), so two runs of
the same plan + seed inject byte-identical fault sequences — the
bedrock of reproducible chaos campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.errors import FaultInjectionError
from ..simulation.rng import seeded_rng
from .plan import FaultPlan

#: Per-hop signaling verdicts.
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"

#: Timed-fault kinds (the campaign schedule's vocabulary).
FLAP_DOWN = "flap-down"
FLAP_UP = "flap-up"
BURST_DOWN = "burst-down"
BURST_UP = "burst-up"
REGIONAL_DOWN = "regional-down"
REGIONAL_UP = "regional-up"
STALENESS = "staleness"
REFRESH = "refresh"


@dataclass(frozen=True)
class TimedFault:
    """One scheduled fault occurrence in a campaign.

    ``links`` carries the affected link ids; for :data:`REGIONAL_DOWN`
    events sampled in SRLG mode, ``groups`` additionally names the
    shared-risk groups that were cut (so the runner can apply the
    failure via the group-labelled recovery path)."""

    time: float
    kind: str
    links: Tuple[int, ...] = ()
    groups: Tuple[int, ...] = ()


class FaultInjector:
    """Samples concrete faults from a plan, deterministically."""

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self._hop_rng = seeded_rng(seed, "faults", "signaling")
        self._crash_rng = seeded_rng(seed, "faults", "crash")
        self._schedule_rng = seeded_rng(seed, "faults", "schedule")
        #: Jitter stream for :meth:`RetryPolicy.backoff` — exposed so
        #: retrying callers stay on the injector's deterministic clock.
        self.retry_rng = seeded_rng(seed, "faults", "retry")

    # ------------------------------------------------------------------
    # Signaling faults (consumed hop by hop during register walks)
    # ------------------------------------------------------------------
    def sample_hop(self) -> Tuple[str, float]:
        """Verdict for one register-packet hop: ``(event, delay)``.

        ``event`` is :data:`DROP` (packet lost before this router
        processes it), :data:`DUPLICATE` (delivered twice) or
        :data:`DELIVER`; ``delay`` is extra signaling latency in
        seconds (counts against the retry policy's deadline).
        """
        spec = self.plan.signaling
        event = DELIVER
        if spec.drop_prob or spec.duplicate_prob:
            roll = self._hop_rng.random()
            if roll < spec.drop_prob:
                event = DROP
            elif roll < spec.drop_prob + spec.duplicate_prob:
                event = DUPLICATE
        delay = 0.0
        if spec.delay_prob and self._hop_rng.random() < spec.delay_prob:
            delay = self._hop_rng.uniform(spec.delay_min, spec.delay_max)
        return event, delay

    def crash_hop(self, hops: int) -> Optional[int]:
        """Hop index at which the processing router crashes mid-walk
        (having registered, before forwarding), or ``None``."""
        spec = self.plan.signaling
        if hops <= 0 or not spec.crash_prob:
            return None
        if self._crash_rng.random() < spec.crash_prob:
            return self._crash_rng.randrange(hops)
        return None

    # ------------------------------------------------------------------
    # Campaign schedule (flaps, bursts, staleness)
    # ------------------------------------------------------------------
    def schedule(
        self, network, duration: float, risk_groups=None
    ) -> List[TimedFault]:
        """Pre-sample every timed fault of a campaign, sorted by time.

        Down events carry the failed link ids; each is paired with an
        up event when the link(s) repair.  Staleness events are paired
        with the re-flood (:data:`REFRESH`) that bounds them.

        ``risk_groups`` (a :class:`~repro.topology.srlg.RiskGroupSet`)
        is required when the plan's regional family runs in ``srlg``
        mode; neighborhood mode needs only the topology.  Disabled
        families consume no randomness, so adding the regional family
        leaves every pre-existing plan's schedule bit-identical.
        """
        if duration <= 0:
            raise FaultInjectionError(
                "campaign duration must be positive, got {}".format(duration)
            )
        rng = self._schedule_rng
        faults: List[TimedFault] = []

        spec = self.plan.flaps
        if spec.enabled:
            for time in self._poisson_times(spec.rate, duration):
                link = rng.randrange(network.num_links)
                down = rng.uniform(spec.down_min, spec.down_max)
                faults.append(TimedFault(time, FLAP_DOWN, (link,)))
                faults.append(TimedFault(time + down, FLAP_UP, (link,)))

        burst = self.plan.bursts
        if burst.enabled:
            for time in self._poisson_times(burst.rate, duration):
                links = self._sample_burst(network, rng)
                if not links:
                    continue
                faults.append(TimedFault(time, BURST_DOWN, links))
                for link in links:
                    down = rng.uniform(burst.down_min, burst.down_max)
                    faults.append(TimedFault(time + down, BURST_UP, (link,)))

        stale = self.plan.staleness
        if stale.enabled:
            for time in self._poisson_times(stale.rate, duration):
                bound = rng.uniform(0.1 * stale.max_staleness,
                                    stale.max_staleness)
                faults.append(TimedFault(time, STALENESS))
                faults.append(TimedFault(time + bound, REFRESH))

        regional = self.plan.regional
        if regional.enabled:
            if regional.mode == "srlg" and risk_groups is None:
                raise FaultInjectionError(
                    "regional faults in 'srlg' mode need a RiskGroupSet; "
                    "pass risk_groups= to schedule()"
                )
            for time in self._poisson_times(regional.rate, duration):
                links, groups = self._sample_region(
                    network, rng, risk_groups
                )
                if not links:
                    continue
                down = rng.uniform(regional.down_min, regional.down_max)
                faults.append(
                    TimedFault(time, REGIONAL_DOWN, links, groups)
                )
                faults.append(
                    TimedFault(time + down, REGIONAL_UP, links, groups)
                )

        faults.sort(key=lambda fault: (fault.time, fault.kind, fault.links))
        return faults

    def _poisson_times(self, rate: float, duration: float) -> List[float]:
        times: List[float] = []
        now = 0.0
        while True:
            now += self._schedule_rng.expovariate(rate)
            if now >= duration:
                return times
            times.append(now)

    def _sample_burst(self, network, rng) -> Tuple[int, ...]:
        spec = self.plan.bursts
        size = rng.randint(spec.size_min, spec.size_max)
        if spec.correlated:
            node = rng.randrange(network.num_nodes)
            candidates = sorted(
                {link.link_id
                 for link in network.out_links(node) + network.in_links(node)}
            )
        else:
            candidates = list(range(network.num_links))
        size = min(size, len(candidates))
        if size == 0:
            return ()
        return tuple(sorted(rng.sample(candidates, size)))

    def _sample_region(
        self, network, rng, risk_groups
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """One regional event: ``(link_ids, group_ids)``.

        SRLG mode cuts whole risk groups; neighborhood mode fails every
        link both of whose endpoints lie within ``radius`` hops of a
        random center (``group_ids`` stays empty there — the region is
        geographic, not named)."""
        spec = self.plan.regional
        if spec.mode == "srlg":
            count = rng.randint(spec.groups_min, spec.groups_max)
            count = min(count, risk_groups.num_groups)
            groups = tuple(
                sorted(rng.sample(sorted(risk_groups.group_ids()), count))
            )
            links: set = set()
            for group_id in groups:
                links.update(risk_groups.members(group_id))
            return tuple(sorted(links)), groups
        center = rng.randrange(network.num_nodes)
        inside = {center}
        frontier = [center]
        for _hop in range(spec.radius):
            next_frontier = []
            for node in frontier:
                for link in network.out_links(node):
                    if link.dst not in inside:
                        inside.add(link.dst)
                        next_frontier.append(link.dst)
            frontier = next_frontier
        links = {
            link.link_id
            for node in sorted(inside)
            for link in network.out_links(node)
            if link.dst in inside
        }
        return tuple(sorted(links)), ()
